package owl

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// xmlNamespace is the namespace the xml: prefix is bound to; Go's decoder
// reports xml:lang with this namespace.
const xmlNamespace = "http://www.w3.org/XML/1998/namespace"

// errWriter funnels every write through one error slot: after the first
// write error, the rest become no-ops and the error surfaces once at the
// end. It lets the serialization code below stay free of per-write error
// checks while writing incrementally (header, one subject at a time,
// footer) instead of staging the whole document — which is what makes
// the streaming pipeline's chunked OWL output possible.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

func (ew *errWriter) WriteString(s string) {
	if ew.err != nil {
		return
	}
	_, ew.err = io.WriteString(ew.w, s)
}

// WriteRDFXML serializes the graph as RDF/XML, the syntax the paper's
// instance generator emits. Statements are grouped by subject; when a
// subject has exactly one rdf:type whose IRI can be abbreviated with the
// supplied prefixes, the typed-node form is used. Output is written
// incrementally — header, one subject element at a time, footer — so a
// chunked writer underneath can flush the document as it forms.
func WriteRDFXML(w io.Writer, g *rdf.Graph, prefixes rdf.PrefixMap) error {
	if prefixes == nil {
		prefixes = rdf.DefaultPrefixes()
	}
	if _, ok := prefixes["rdf"]; !ok {
		prefixes["rdf"] = rdf.RDFNS
	}

	ew := &errWriter{w: w}
	ew.WriteString(xml.Header)
	ew.WriteString("<rdf:RDF")
	labels := make([]string, 0, len(prefixes))
	for l := range prefixes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(ew, "\n    xmlns:%s=%q", l, prefixes[l])
	}
	ew.WriteString(">\n")

	triples := g.All()
	bySubject := make(map[string][]rdf.Triple)
	var order []string
	for _, t := range triples {
		k := t.Subject.Key()
		if _, ok := bySubject[k]; !ok {
			order = append(order, k)
		}
		bySubject[k] = append(bySubject[k], t)
	}
	sort.Strings(order)

	for _, subjKey := range order {
		if err := writeSubject(ew, bySubject[subjKey], prefixes); err != nil {
			return err
		}
	}
	ew.WriteString("</rdf:RDF>\n")
	return ew.err
}

// RDFXMLString returns the RDF/XML serialization of g.
func RDFXMLString(g *rdf.Graph, prefixes rdf.PrefixMap) string {
	var b strings.Builder
	//lint:ignore errcheck strings.Builder never fails, so WriteRDFXML cannot either
	_ = WriteRDFXML(&b, g, prefixes)
	return b.String()
}

// qname splits an IRI into a registered namespace prefix and local name.
// RDF/XML requires every property element to be a QName.
func qname(prefixes rdf.PrefixMap, iri rdf.IRI) (prefix, local string, ok bool) {
	s := string(iri)
	for label, ns := range prefixes {
		if strings.HasPrefix(s, ns) && len(s) > len(ns) {
			rest := s[len(ns):]
			if isXMLName(rest) {
				return label, rest, true
			}
		}
	}
	return "", "", false
}

func isXMLName(s string) bool {
	for i, r := range s {
		letter := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
		if i == 0 && !letter {
			return false
		}
		if !letter && !(r >= '0' && r <= '9') && r != '-' && r != '.' {
			return false
		}
	}
	return s != ""
}

func writeSubject(b *errWriter, ts []rdf.Triple, prefixes rdf.PrefixMap) error {
	subj := ts[0].Subject

	// Find a single abbreviable rdf:type to use as the element name.
	elem := "rdf:Description"
	var typeUsed *rdf.Triple
	var typeCount int
	for i, t := range ts {
		if t.Predicate.Key() == rdf.RDFType.Key() {
			typeCount++
			if iri, ok := t.Object.(rdf.IRI); ok && typeUsed == nil {
				if p, l, ok := qname(prefixes, iri); ok {
					elem = p + ":" + l
					typeUsed = &ts[i]
				}
			}
		}
	}
	if typeCount != 1 {
		// Ambiguous or absent type: fall back to rdf:Description for all.
		elem = "rdf:Description"
		typeUsed = nil
	}

	b.WriteString("  <" + elem)
	switch s := subj.(type) {
	case rdf.IRI:
		fmt.Fprintf(b, " rdf:about=%q", string(s))
	case rdf.BlankNode:
		fmt.Fprintf(b, " rdf:nodeID=%q", string(s))
	default:
		return fmt.Errorf("owl: rdf/xml subject %s has unsupported kind", subj)
	}
	b.WriteString(">\n")

	for _, t := range ts {
		if typeUsed != nil && t == *typeUsed {
			continue
		}
		predIRI, isIRI := t.Predicate.(rdf.IRI)
		if !isIRI {
			return fmt.Errorf("owl: predicate %s is not an IRI", t.Predicate)
		}
		p, l, ok := qname(prefixes, predIRI)
		if !ok {
			return fmt.Errorf("owl: predicate %s has no registered prefix; rdf/xml requires QName properties", t.Predicate)
		}
		prop := p + ":" + l
		switch o := t.Object.(type) {
		case rdf.IRI:
			fmt.Fprintf(b, "    <%s rdf:resource=%q/>\n", prop, string(o))
		case rdf.BlankNode:
			fmt.Fprintf(b, "    <%s rdf:nodeID=%q/>\n", prop, string(o))
		case rdf.Literal:
			b.WriteString("    <" + prop)
			if o.Lang != "" {
				fmt.Fprintf(b, " xml:lang=%q", o.Lang)
			} else if dt := o.EffectiveDatatype(); dt != rdf.XSDString {
				fmt.Fprintf(b, " rdf:datatype=%q", string(dt))
			}
			b.WriteString(">")
			if err := xml.EscapeText(b, []byte(o.Value)); err != nil {
				return err
			}
			b.WriteString("</" + prop + ">\n")
		}
	}
	b.WriteString("  </" + elem + ">\n")
	return nil
}

// ParseRDFXML reads the RDF/XML subset produced by WriteRDFXML plus common
// hand-written forms: typed node elements, rdf:about / rdf:nodeID subjects,
// property elements carrying rdf:resource, rdf:nodeID, rdf:datatype,
// xml:lang, literal text content, or a single nested node element.
func ParseRDFXML(r io.Reader) (*rdf.Graph, error) {
	g := rdf.NewGraph()
	dec := xml.NewDecoder(r)

	// Find the rdf:RDF root.
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("owl: rdf/xml document has no rdf:RDF root")
		}
		if err != nil {
			return nil, fmt.Errorf("owl: parsing rdf/xml: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			if se.Name.Space != rdf.RDFNS || se.Name.Local != "RDF" {
				return nil, fmt.Errorf("owl: root element is {%s}%s, want rdf:RDF", se.Name.Space, se.Name.Local)
			}
			break
		}
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("owl: parsing rdf/xml: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			if _, err := parseNode(dec, el, g); err != nil {
				return nil, err
			}
		case xml.EndElement:
			return g, nil
		}
	}
	return g, nil
}

// parseNode parses a node element (a resource description) and returns the
// subject term.
func parseNode(dec *xml.Decoder, el xml.StartElement, g *rdf.Graph) (rdf.Term, error) {
	var subj rdf.Term
	for _, a := range el.Attr {
		if a.Name.Space != rdf.RDFNS {
			continue
		}
		switch a.Name.Local {
		case "about":
			subj = rdf.IRI(a.Value)
		case "ID":
			subj = rdf.IRI("#" + a.Value)
		case "nodeID":
			subj = rdf.BlankNode(a.Value)
		}
	}
	if subj == nil {
		subj = g.NewBlank()
	}

	// A typed node element asserts rdf:type.
	if el.Name.Space != rdf.RDFNS || el.Name.Local != "Description" {
		if err := g.Add(rdf.T(subj, rdf.RDFType, rdf.IRI(el.Name.Space+el.Name.Local))); err != nil {
			return nil, err
		}
	}

	// Non-rdf attributes are literal property abbreviations.
	for _, a := range el.Attr {
		switch a.Name.Space {
		case rdf.RDFNS, "xmlns", "", "xml", xmlNamespace:
			continue
		}
		t := rdf.T(subj, rdf.IRI(a.Name.Space+a.Name.Local), rdf.String(a.Value))
		if err := g.Add(t); err != nil {
			return nil, err
		}
	}

	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("owl: parsing rdf/xml node %s: %w", el.Name.Local, err)
		}
		switch inner := tok.(type) {
		case xml.StartElement:
			if err := parseProperty(dec, inner, subj, g); err != nil {
				return nil, err
			}
		case xml.EndElement:
			return subj, nil
		}
	}
}

// parseProperty parses one property element of the node with subject subj.
func parseProperty(dec *xml.Decoder, el xml.StartElement, subj rdf.Term, g *rdf.Graph) error {
	pred := rdf.IRI(el.Name.Space + el.Name.Local)
	var (
		resource *string
		nodeID   *string
		datatype string
		lang     string
	)
	for _, a := range el.Attr {
		switch {
		case a.Name.Space == rdf.RDFNS && a.Name.Local == "resource":
			v := a.Value
			resource = &v
		case a.Name.Space == rdf.RDFNS && a.Name.Local == "nodeID":
			v := a.Value
			nodeID = &v
		case a.Name.Space == rdf.RDFNS && a.Name.Local == "datatype":
			datatype = a.Value
		case (a.Name.Space == "xml" || a.Name.Space == xmlNamespace) && a.Name.Local == "lang":
			lang = a.Value
		}
	}

	if resource != nil || nodeID != nil {
		var obj rdf.Term
		if resource != nil {
			obj = rdf.IRI(*resource)
		} else {
			obj = rdf.BlankNode(*nodeID)
		}
		if err := g.Add(rdf.T(subj, pred, obj)); err != nil {
			return err
		}
		return dec.Skip()
	}

	// Otherwise: literal content or one nested node element.
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("owl: parsing rdf/xml property %s: %w", el.Name.Local, err)
		}
		switch inner := tok.(type) {
		case xml.CharData:
			text.Write(inner)
		case xml.StartElement:
			obj, err := parseNode(dec, inner, g)
			if err != nil {
				return err
			}
			if err := g.Add(rdf.T(subj, pred, obj)); err != nil {
				return err
			}
			// Consume up to the property end element.
			if err := dec.Skip(); err != nil {
				return err
			}
			return nil
		case xml.EndElement:
			lit := rdf.Literal{Value: text.String(), Datatype: rdf.IRI(datatype), Lang: lang}
			return g.Add(rdf.T(subj, pred, lit))
		}
	}
}
