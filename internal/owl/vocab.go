// Package owl layers the Web Ontology Language vocabulary and an RDF/XML
// reader/writer on top of the rdf package.
//
// The S2S middleware adopts OWL as its ontology language because it is the
// W3C recommendation (paper §2); ontology schemas are published and the
// instance generator's primary output format is OWL serialized as RDF/XML.
package owl

import "repro/internal/rdf"

// OWL vocabulary terms used by the middleware.
const (
	Class              rdf.IRI = rdf.OWLNS + "Class"
	ObjectProperty     rdf.IRI = rdf.OWLNS + "ObjectProperty"
	DatatypeProperty   rdf.IRI = rdf.OWLNS + "DatatypeProperty"
	FunctionalProperty rdf.IRI = rdf.OWLNS + "FunctionalProperty"
	NamedIndividual    rdf.IRI = rdf.OWLNS + "NamedIndividual"
	Ontology           rdf.IRI = rdf.OWLNS + "Ontology"
	Imports            rdf.IRI = rdf.OWLNS + "imports"
	VersionInfo        rdf.IRI = rdf.OWLNS + "versionInfo"
	Thing              rdf.IRI = rdf.OWLNS + "Thing"
)
