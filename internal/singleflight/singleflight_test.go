package singleflight

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoSequentialRunsEveryCall checks that completed calls leave no
// residue: sequential Dos with the same key each execute.
func TestDoSequentialRunsEveryCall(t *testing.T) {
	var g Group
	var calls int32
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do("k", func() (any, error) {
			return atomic.AddInt32(&calls, 1), nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
		if got := v.(int32); got != int32(i+1) {
			t.Fatalf("call %d returned %d, want %d (no caching between calls)", i, got, i+1)
		}
	}
}

// TestDoDeduplicatesConcurrentCalls holds the leader until every other
// goroutine is blocked on the same key, then asserts the function ran
// exactly once and everyone got its value.
func TestDoDeduplicatesConcurrentCalls(t *testing.T) {
	const fanIn = 8
	var g Group
	var calls int32
	leaderIn := make(chan struct{})

	results := make([]any, fanIn)
	shareds := make([]bool, fanIn)
	var wg sync.WaitGroup
	for i := 0; i < fanIn; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (any, error) {
				close(leaderIn)
				// Hold until every non-leader is provably parked on the key.
				for g.Waiting("k") < fanIn-1 {
					runtime.Gosched()
				}
				return int(atomic.AddInt32(&calls, 1)), nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = v
			shareds[i] = shared
		}(i)
	}
	<-leaderIn
	wg.Wait()

	if calls != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers, want 1", calls, fanIn)
	}
	sharedCount := 0
	for i, v := range results {
		if v.(int) != 1 {
			t.Errorf("goroutine %d got %v, want the leader's 1", i, v)
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount != fanIn-1 {
		t.Errorf("shared reported by %d callers, want %d", sharedCount, fanIn-1)
	}
	if g.Waiting("k") != 0 {
		t.Errorf("Waiting = %d after completion, want 0", g.Waiting("k"))
	}
}

// TestDoPropagatesErrorsWithoutCaching checks errors reach every waiter
// but are not remembered for later calls.
func TestDoPropagatesErrorsWithoutCaching(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	if _, err, _ := g.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err, _ := g.Do("k", func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("after an error the next call must run fresh: v=%v err=%v", v, err)
	}
}

// TestDoPanicDoesNotStrandWaiters checks a panicking leader still
// releases the key so later callers run.
func TestDoPanicDoesNotStrandWaiters(t *testing.T) {
	var g Group
	func() {
		defer func() { _ = recover() }()
		_, _, _ = g.Do("k", func() (any, error) { panic("leader died") })
	}()
	v, err, _ := g.Do("k", func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("key stranded after leader panic: v=%v err=%v", v, err)
	}
}
