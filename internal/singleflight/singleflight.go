// Package singleflight suppresses duplicate concurrent work: calls that
// share a key while one is in flight wait for the leader's result
// instead of repeating the call. The extract manager uses it so N
// identical queries racing on a cold rule cache or an unfetched source
// document cost one backend round trip, not N.
//
// Unlike a cache, a completed call leaves no residue: the key is
// forgotten the moment the leader returns, so freshness policy stays
// wherever the caller keeps it (the rule cache's TTL, the per-run
// document memo). This is a stdlib-only re-implementation of the
// well-known golang.org/x/sync/singleflight shape, reduced to what the
// hot path needs.
package singleflight

import "sync"

// call is one in-flight unit of work.
type call struct {
	wg      sync.WaitGroup
	val     any
	err     error
	waiters int // guarded by Group.mu
}

// Group deduplicates function calls by key. The zero value is ready to
// use; a Group must not be copied after first use.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do executes fn and returns its result, ensuring that only one
// execution is in flight for a given key at a time. Concurrent callers
// with the same key wait for the leader and receive its result; shared
// reports whether the result came from another caller's execution.
// Results are shared, so callers must treat them as read-only.
func (g *Group) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(call)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// The key is removed before waiters are released so a panic in fn
	// cannot strand future callers, and a call that finishes leaves no
	// residue to serve (freshness stays the caller's policy).
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

// Waiting reports how many callers are currently blocked on the key's
// in-flight call, not counting the leader; 0 when nothing is in flight.
// It exists for tests and ops introspection: a deterministic dedup test
// holds the leader until Waiting reaches the expected fan-in.
func (g *Group) Waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters
	}
	return 0
}
