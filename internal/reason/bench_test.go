package reason

import (
	"fmt"
	"testing"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

// BenchmarkMaterialize measures RDFS closure over a typed instance graph.
func BenchmarkMaterialize(b *testing.B) {
	ont := ontology.Paper()
	schema := ont.ToGraph()
	data := rdf.NewGraph()
	watchClass := rdf.IRI(string(ontology.PaperBase) + "watch")
	brand := rdf.IRI(string(ontology.PaperBase) + "thing_product_brand")
	for i := 0; i < 2000; i++ {
		iri := rdf.IRI(fmt.Sprintf("%swatch_%d", ontology.PaperBase, i))
		data.MustAdd(rdf.T(iri, rdf.RDFType, watchClass))
		data.MustAdd(rdf.T(iri, brand, rdf.String("Seiko")))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Materialize(schema, data)
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() <= data.Len() {
			b.Fatal("nothing inferred")
		}
	}
}
