package reason

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

func TestSubclassTypePropagation(t *testing.T) {
	ont := ontology.Paper()
	schema := ont.ToGraph()
	data := rdf.NewGraph()
	watchIRI := rdf.IRI(string(ontology.PaperBase) + "watch_1")
	watchClass := rdf.IRI(string(ontology.PaperBase) + "watch")
	data.MustAdd(rdf.T(watchIRI, rdf.RDFType, watchClass))

	out, err := Materialize(schema, data)
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]bool{}
	for _, iri := range Types(out, watchIRI) {
		types[iri.Local()] = true
	}
	for _, want := range []string{"watch", "product", "thing"} {
		if !types[want] {
			t.Errorf("missing inferred type %s: %v", want, types)
		}
	}
	// Inputs untouched.
	if data.Len() != 1 {
		t.Errorf("input graph mutated: %d triples", data.Len())
	}
}

func TestDomainRangeTyping(t *testing.T) {
	ont := ontology.Paper()
	schema := ont.ToGraph()
	data := rdf.NewGraph()
	w := rdf.IRI(string(ontology.PaperBase) + "watch_9")
	p := rdf.IRI(string(ontology.PaperBase) + "provider_9")
	hasProvider := rdf.IRI(string(ontology.PaperBase) + "product_hasProvider")
	// No explicit types at all: both ends get typed from the property.
	data.MustAdd(rdf.T(w, hasProvider, p))

	out, err := Materialize(schema, data)
	if err != nil {
		t.Fatal(err)
	}
	wTypes := map[string]bool{}
	for _, iri := range Types(out, w) {
		wTypes[iri.Local()] = true
	}
	if !wTypes["product"] || !wTypes["thing"] {
		t.Errorf("domain typing failed: %v", wTypes)
	}
	pTypes := map[string]bool{}
	for _, iri := range Types(out, p) {
		pTypes[iri.Local()] = true
	}
	if !pTypes["provider"] {
		t.Errorf("range typing failed: %v", pTypes)
	}
}

func TestSubPropertyPropagation(t *testing.T) {
	schema := rdf.NewGraph()
	narrow := rdf.IRI("http://e/hasDiveBuddy")
	wide := rdf.IRI("http://e/knows")
	wider := rdf.IRI("http://e/relatedTo")
	schema.MustAdd(rdf.T(narrow, rdf.RDFSSubPropertyOf, wide))
	schema.MustAdd(rdf.T(wide, rdf.RDFSSubPropertyOf, wider))

	data := rdf.NewGraph()
	a, b := rdf.IRI("http://e/a"), rdf.IRI("http://e/b")
	data.MustAdd(rdf.T(a, narrow, b))

	out, err := Materialize(schema, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []rdf.IRI{narrow, wide, wider} {
		if !out.Has(rdf.T(a, p, b)) {
			t.Errorf("missing entailed statement via %s", p)
		}
	}
}

func TestCyclicSubclassConverges(t *testing.T) {
	// A ⊑ B ⊑ A: the closure is finite (each typed as both); must converge.
	schema := rdf.NewGraph()
	a, b := rdf.IRI("http://e/A"), rdf.IRI("http://e/B")
	schema.MustAdd(rdf.T(a, rdf.RDFSSubClassOf, b))
	schema.MustAdd(rdf.T(b, rdf.RDFSSubClassOf, a))
	data := rdf.NewGraph()
	x := rdf.IRI("http://e/x")
	data.MustAdd(rdf.T(x, rdf.RDFType, a))
	out, err := Materialize(schema, data)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has(rdf.T(x, rdf.RDFType, b)) {
		t.Error("cycle member type not inferred")
	}
}

func TestEmptySchemaIsIdentity(t *testing.T) {
	data := rdf.NewGraph()
	data.MustAdd(rdf.T(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.String("v")))
	out, err := Materialize(rdf.NewGraph(), data)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(data) {
		t.Error("empty schema changed the data")
	}
}

// TestSemanticQueryOverMiddlewareOutput is the headline semantic win: a
// SPARQL query for *products* finds the middleware's *watch* instances once
// the ontology is materialized — the subclass knowledge travels with the
// data, which no syntactic integration provides.
func TestSemanticQueryOverMiddlewareOutput(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{DBSources: 1, RecordsPerSource: 10, Seed: 41})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	graph, err := mw.Generator().ToGraph(res)
	if err != nil {
		t.Fatal(err)
	}

	const productQuery = `PREFIX ont: <http://s2s.uma.pt/watch#> SELECT ?x WHERE { ?x a ont:product . }`

	// Without reasoning: instances are typed ont:watch only.
	raw, err := sparql.Select(graph, productQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Bindings) != 0 {
		t.Fatalf("raw graph unexpectedly has product types: %v", raw.Bindings)
	}

	// With reasoning: every watch is a product.
	materialized, err := Materialize(world.Ontology.ToGraph(), graph)
	if err != nil {
		t.Fatal(err)
	}
	inferred, err := sparql.Select(materialized, productQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(inferred.Bindings) != 10 {
		t.Fatalf("inferred products = %d, want 10", len(inferred.Bindings))
	}
}

func TestTypesHelper(t *testing.T) {
	g := rdf.NewGraph()
	s := rdf.IRI("http://e/s")
	g.MustAdd(rdf.T(s, rdf.RDFType, rdf.IRI("http://e/C")))
	g.MustAdd(rdf.T(s, rdf.RDFType, rdf.Literal{Value: "bogus"})) // ignored: not an IRI
	types := Types(g, s)
	if len(types) != 1 || !strings.HasSuffix(string(types[0]), "C") {
		t.Errorf("Types = %v", types)
	}
}
