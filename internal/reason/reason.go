// Package reason implements RDFS-style forward-chaining inference over the
// middleware's output graphs. It closes the gap between "semantic data
// representation" and "intelligent processing" (paper §2.2, §5): with the
// ontology's axioms materialized, a consumer asking for products also sees
// every watch, because watch ⊑ product is part of the shared schema.
//
// Implemented entailment rules (the RDFS subset relevant to S2S output):
//
//	rdfs5  (p subPropertyOf q) ∧ (q subPropertyOf r) → (p subPropertyOf r)
//	rdfs7  (x p y) ∧ (p subPropertyOf q)             → (x q y)
//	rdfs9  (x type C) ∧ (C subClassOf D)             → (x type D)
//	rdfs11 (C subClassOf D) ∧ (D subClassOf E)       → (C subClassOf E)
//	rdfs2  (x p y) ∧ (p domain C)                    → (x type C)
//	rdfs3  (x p y) ∧ (p range C), y is a resource    → (y type C)
package reason

import (
	"fmt"

	"repro/internal/rdf"
)

// MaxIterations scales the derivation budget; the worklist processes each
// triple once, so exceeding it indicates a pathological schema.
const MaxIterations = 1000

// Materialize returns a new graph containing every triple of data plus all
// triples entailed by the schema's RDFS axioms. Neither input is modified.
func Materialize(schema, data *rdf.Graph) (*rdf.Graph, error) {
	out := data.Clone()

	// Index the schema once.
	subClass := index(schema, rdf.RDFSSubClassOf)
	subProp := index(schema, rdf.RDFSSubPropertyOf)
	domain := index(schema, rdf.RDFSDomain)
	rng := index(schema, rdf.RDFSRange)

	// Transitive closures of the schema relations (rdfs5, rdfs11).
	subClass = transitiveClosure(subClass)
	subProp = transitiveClosure(subProp)

	// Worklist fixed point: every rule here derives from a single triple,
	// so each triple (asserted or derived) is processed exactly once.
	queue := out.All()
	processed := 0
	add := func(t rdf.Triple) {
		if !out.Has(t) {
			out.MustAdd(t)
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		if processed > MaxIterations*1_000_000 {
			return nil, fmt.Errorf("reason: closure exceeded %d derivations", processed)
		}
		pred, ok := t.Predicate.(rdf.IRI)
		if !ok {
			continue
		}

		// rdfs9: propagate types up the class hierarchy.
		if pred == rdf.RDFType {
			if classIRI, ok := t.Object.(rdf.IRI); ok {
				for _, super := range subClass[classIRI] {
					add(rdf.T(t.Subject, rdf.RDFType, super))
				}
			}
			continue
		}

		// rdfs7: propagate statements up the property hierarchy.
		for _, super := range subProp[pred] {
			add(rdf.T(t.Subject, super, t.Object))
		}

		// rdfs2: domain typing.
		for _, c := range domain[pred] {
			add(rdf.T(t.Subject, rdf.RDFType, c))
		}

		// rdfs3: range typing (resources only; literals have no type
		// triples).
		if t.Object.Kind() != rdf.KindLiteral {
			for _, c := range rng[pred] {
				add(rdf.T(t.Object, rdf.RDFType, c))
			}
		}
	}
	return out, nil
}

// index maps subject IRI → object IRIs for one schema predicate.
func index(schema *rdf.Graph, pred rdf.IRI) map[rdf.IRI][]rdf.IRI {
	out := map[rdf.IRI][]rdf.IRI{}
	for _, t := range schema.Match(nil, pred, nil) {
		s, sok := t.Subject.(rdf.IRI)
		o, ook := t.Object.(rdf.IRI)
		if sok && ook {
			out[s] = append(out[s], o)
		}
	}
	return out
}

// transitiveClosure expands each entry to all reachable targets.
func transitiveClosure(m map[rdf.IRI][]rdf.IRI) map[rdf.IRI][]rdf.IRI {
	out := map[rdf.IRI][]rdf.IRI{}
	for start := range m {
		seen := map[rdf.IRI]bool{start: true}
		stack := append([]rdf.IRI{}, m[start]...)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			out[start] = append(out[start], cur)
			stack = append(stack, m[cur]...)
		}
	}
	return out
}

// Types returns every type asserted or entailed for a subject in a
// materialized graph.
func Types(g *rdf.Graph, subject rdf.Term) []rdf.IRI {
	var out []rdf.IRI
	for _, t := range g.Objects(subject, rdf.RDFType) {
		if iri, ok := t.(rdf.IRI); ok {
			out = append(out, iri)
		}
	}
	return out
}
