package rdf

// Well-known namespaces.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"
)

// RDF vocabulary terms.
const (
	RDFType       IRI = RDFNS + "type"
	RDFProperty   IRI = RDFNS + "Property"
	RDFLangString IRI = RDFNS + "langString"
	RDFFirst      IRI = RDFNS + "first"
	RDFRest       IRI = RDFNS + "rest"
	RDFNil        IRI = RDFNS + "nil"
)

// RDFS vocabulary terms.
const (
	RDFSClass         IRI = RDFSNS + "Class"
	RDFSSubClassOf    IRI = RDFSNS + "subClassOf"
	RDFSLabel         IRI = RDFSNS + "label"
	RDFSComment       IRI = RDFSNS + "comment"
	RDFSDomain        IRI = RDFSNS + "domain"
	RDFSRange         IRI = RDFSNS + "range"
	RDFSSubPropertyOf IRI = RDFSNS + "subPropertyOf"
)

// XSD datatype IRIs.
const (
	XSDString   IRI = XSDNS + "string"
	XSDInteger  IRI = XSDNS + "integer"
	XSDDecimal  IRI = XSDNS + "decimal"
	XSDDouble   IRI = XSDNS + "double"
	XSDBoolean  IRI = XSDNS + "boolean"
	XSDDate     IRI = XSDNS + "date"
	XSDDateTime IRI = XSDNS + "dateTime"
	XSDAnyURI   IRI = XSDNS + "anyURI"
)
