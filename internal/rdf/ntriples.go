package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteNTriples serializes the graph in canonical order, one statement per
// line, to w.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.All() {
		if _, err := fmt.Fprintln(bw, t.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// NTriplesString returns the canonical N-Triples serialization of g.
func NTriplesString(g *Graph) string {
	var b strings.Builder
	//lint:ignore errcheck strings.Builder never fails, so WriteNTriples cannot either
	_ = WriteNTriples(&b, g)
	return b.String()
}

// ParseNTriples reads an N-Triples document into a new graph. Blank lines
// and '#' comment lines are skipped.
func ParseNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTriplesLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: n-triples line %d: %w", lineNo, err)
		}
		if err := g.Add(t); err != nil {
			return nil, fmt.Errorf("rdf: n-triples line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading n-triples: %w", err)
	}
	return g, nil
}

func parseNTriplesLine(line string) (Triple, error) {
	p := &ntParser{input: line}
	subj, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pred, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	obj, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipSpace()
	if !p.consume('.') {
		return Triple{}, fmt.Errorf("missing terminating '.'")
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return Triple{}, fmt.Errorf("trailing content %q", p.input[p.pos:])
	}
	return Triple{Subject: subj, Predicate: pred, Object: obj}, nil
}

type ntParser struct {
	input string
	pos   int
}

func (p *ntParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) consume(c byte) bool {
	if p.pos < len(p.input) && p.input[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *ntParser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return nil, fmt.Errorf("unexpected end of line")
	}
	switch p.input[p.pos] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return nil, fmt.Errorf("unexpected character %q", p.input[p.pos])
	}
}

func (p *ntParser) iri() (IRI, error) {
	p.pos++ // consume '<'
	var b strings.Builder
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		switch c {
		case '>':
			p.pos++
			return IRI(b.String()), nil
		case '\\':
			r, err := p.escape()
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", fmt.Errorf("unterminated IRI")
}

func (p *ntParser) blank() (BlankNode, error) {
	if !strings.HasPrefix(p.input[p.pos:], "_:") {
		return "", fmt.Errorf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.input) && !isNTDelim(p.input[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("empty blank node label")
	}
	return BlankNode(p.input[start:p.pos]), nil
}

func (p *ntParser) literal() (Literal, error) {
	p.pos++ // consume '"'
	var b strings.Builder
	for {
		if p.pos >= len(p.input) {
			return Literal{}, fmt.Errorf("unterminated literal")
		}
		c := p.input[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			r, err := p.escape()
			if err != nil {
				return Literal{}, err
			}
			b.WriteRune(r)
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lit := Literal{Value: b.String()}
	if p.pos < len(p.input) && p.input[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.input) && !isNTDelim(p.input[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return Literal{}, fmt.Errorf("empty language tag")
		}
		lit.Lang = p.input[start:p.pos]
	} else if strings.HasPrefix(p.input[p.pos:], "^^") {
		p.pos += 2
		if p.pos >= len(p.input) || p.input[p.pos] != '<' {
			return Literal{}, fmt.Errorf("datatype must be an IRI")
		}
		dt, err := p.iri()
		if err != nil {
			return Literal{}, err
		}
		lit.Datatype = dt
	}
	return lit, nil
}

func (p *ntParser) escape() (rune, error) {
	// p.input[p.pos] == '\\'
	if p.pos+1 >= len(p.input) {
		return 0, fmt.Errorf("dangling escape")
	}
	c := p.input[p.pos+1]
	p.pos += 2
	switch c {
	case 't':
		return '\t', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case '"':
		return '"', nil
	case '\\':
		return '\\', nil
	case 'u', 'U':
		n := 4
		if c == 'U' {
			n = 8
		}
		if p.pos+n > len(p.input) {
			return 0, fmt.Errorf("truncated \\%c escape", c)
		}
		var r rune
		for i := 0; i < n; i++ {
			d := p.input[p.pos+i]
			var v rune
			switch {
			case d >= '0' && d <= '9':
				v = rune(d - '0')
			case d >= 'a' && d <= 'f':
				v = rune(d-'a') + 10
			case d >= 'A' && d <= 'F':
				v = rune(d-'A') + 10
			default:
				return 0, fmt.Errorf("invalid hex digit %q in escape", d)
			}
			r = r<<4 | v
		}
		p.pos += n
		return r, nil
	default:
		return 0, fmt.Errorf("unknown escape \\%c", c)
	}
}

func isNTDelim(c byte) bool {
	return c == ' ' || c == '\t' || c == '.' || c == '<' || c == '"'
}
