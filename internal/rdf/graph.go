package rdf

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is an in-memory set of triples with subject, predicate, and object
// indexes. The zero value is not usable; construct with NewGraph. Graph is
// safe for concurrent use.
type Graph struct {
	mu      sync.RWMutex
	triples map[string]Triple // key → triple
	bySubj  map[string]map[string]struct{}
	byPred  map[string]map[string]struct{}
	byObj   map[string]map[string]struct{}
	blankN  int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		triples: make(map[string]Triple),
		bySubj:  make(map[string]map[string]struct{}),
		byPred:  make(map[string]map[string]struct{}),
		byObj:   make(map[string]map[string]struct{}),
	}
}

// Add inserts a triple. Adding a triple that is already present is a no-op.
// It returns an error if the triple is not valid RDF.
func (g *Graph) Add(t Triple) error {
	if err := t.Valid(); err != nil {
		return err
	}
	key := t.Key()
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.triples[key]; ok {
		return nil
	}
	g.triples[key] = t
	addIndex(g.bySubj, t.Subject.Key(), key)
	addIndex(g.byPred, t.Predicate.Key(), key)
	addIndex(g.byObj, t.Object.Key(), key)
	return nil
}

// MustAdd is Add but panics on invalid triples. It is intended for
// statically-known statements such as vocabulary definitions.
func (g *Graph) MustAdd(t Triple) {
	if err := g.Add(t); err != nil {
		panic(err)
	}
}

// AddAll inserts every triple, stopping at the first invalid one.
func (g *Graph) AddAll(ts []Triple) error {
	for _, t := range ts {
		if err := g.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes a triple; it reports whether the triple was present.
func (g *Graph) Remove(t Triple) bool {
	key := t.Key()
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.triples[key]; !ok {
		return false
	}
	delete(g.triples, key)
	dropIndex(g.bySubj, t.Subject.Key(), key)
	dropIndex(g.byPred, t.Predicate.Key(), key)
	dropIndex(g.byObj, t.Object.Key(), key)
	return true
}

// Has reports whether the triple is in the graph.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.triples[t.Key()]
	return ok
}

// Len returns the number of triples.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.triples)
}

// NewBlank allocates a blank node with a graph-unique label.
func (g *Graph) NewBlank() BlankNode {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := BlankNode(fmt.Sprintf("b%d", g.blankN))
	g.blankN++
	return b
}

// Match returns all triples matching the pattern; nil pattern terms act as
// wildcards. The result is sorted into canonical (N-Triples key) order so
// that iteration is deterministic.
func (g *Graph) Match(s, p, o Term) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()

	// Choose the most selective available index.
	var candidate map[string]struct{}
	switch {
	case s != nil:
		candidate = g.bySubj[s.Key()]
	case o != nil:
		candidate = g.byObj[o.Key()]
	case p != nil:
		candidate = g.byPred[p.Key()]
	}

	var out []Triple
	match := func(t Triple) bool {
		if s != nil && t.Subject.Key() != s.Key() {
			return false
		}
		if p != nil && t.Predicate.Key() != p.Key() {
			return false
		}
		if o != nil && t.Object.Key() != o.Key() {
			return false
		}
		return true
	}
	if s == nil && p == nil && o == nil {
		out = make([]Triple, 0, len(g.triples))
		for _, t := range g.triples {
			out = append(out, t)
		}
	} else if candidate != nil {
		for key := range candidate {
			if t := g.triples[key]; match(t) {
				out = append(out, t)
			}
		}
	}
	keys := make([]string, len(out))
	for i, t := range out {
		keys[i] = t.Key()
	}
	sort.Sort(&tripleSort{triples: out, keys: keys})
	return out
}

// Objects returns the objects of all (s, p, *) triples in canonical order.
func (g *Graph) Objects(s, p Term) []Term {
	ts := g.Match(s, p, nil)
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = t.Object
	}
	return out
}

// Subjects returns the subjects of all (*, p, o) triples in canonical order.
func (g *Graph) Subjects(p, o Term) []Term {
	ts := g.Match(nil, p, o)
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = t.Subject
	}
	return out
}

// FirstObject returns the object of one (s, p, *) triple, or nil if none
// exists. When several match, the canonically smallest is returned.
func (g *Graph) FirstObject(s, p Term) Term {
	ts := g.Match(s, p, nil)
	if len(ts) == 0 {
		return nil
	}
	return ts[0].Object
}

// All returns every triple in canonical order.
func (g *Graph) All() []Triple { return g.Match(nil, nil, nil) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	for _, t := range g.All() {
		out.MustAdd(t)
	}
	g.mu.RLock()
	out.blankN = g.blankN
	g.mu.RUnlock()
	return out
}

// Merge adds every triple of other into g.
func (g *Graph) Merge(other *Graph) {
	for _, t := range other.All() {
		g.MustAdd(t)
	}
}

// Equal reports whether the two graphs contain exactly the same triples.
// Blank nodes are compared by label, not by isomorphism.
func (g *Graph) Equal(other *Graph) bool {
	if g.Len() != other.Len() {
		return false
	}
	for _, t := range g.All() {
		if !other.Has(t) {
			return false
		}
	}
	return true
}

type tripleSort struct {
	triples []Triple
	keys    []string
}

func (s *tripleSort) Len() int           { return len(s.triples) }
func (s *tripleSort) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *tripleSort) Swap(i, j int) {
	s.triples[i], s.triples[j] = s.triples[j], s.triples[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

func addIndex(idx map[string]map[string]struct{}, term, key string) {
	set, ok := idx[term]
	if !ok {
		set = make(map[string]struct{})
		idx[term] = set
	}
	set[key] = struct{}{}
}

func dropIndex(idx map[string]map[string]struct{}, term, key string) {
	set, ok := idx[term]
	if !ok {
		return
	}
	delete(set, key)
	if len(set) == 0 {
		delete(idx, term)
	}
}
