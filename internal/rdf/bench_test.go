package rdf

import (
	"fmt"
	"strings"
	"testing"
)

func benchGraph(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		s := ex(fmt.Sprintf("s%d", i%100))
		g.MustAdd(T(s, ex(fmt.Sprintf("p%d", i%8)), Integer(int64(i))))
	}
	return g
}

func BenchmarkGraphAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		for j := 0; j < 1000; j++ {
			g.MustAdd(T(ex(fmt.Sprintf("s%d", j%100)), ex("p"), Integer(int64(j))))
		}
	}
}

func BenchmarkGraphMatchBySubject(b *testing.B) {
	g := benchGraph(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Match(ex("s42"), nil, nil); len(got) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkTurtleWrite(b *testing.B) {
	g := benchGraph(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := TurtleString(g, PrefixMap{"ex": "http://example.org/"}); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTurtleParse(b *testing.B) {
	doc := TurtleString(benchGraph(2000), PrefixMap{"ex": "http://example.org/"})
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTurtle(strings.NewReader(doc)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNTriplesParse(b *testing.B) {
	doc := NTriplesString(benchGraph(2000))
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseNTriples(strings.NewReader(doc)); err != nil {
			b.Fatal(err)
		}
	}
}
