package rdf

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PrefixMap maps prefix labels (without the colon) to namespace IRIs.
type PrefixMap map[string]string

// DefaultPrefixes returns the prefixes used throughout the middleware.
func DefaultPrefixes() PrefixMap {
	return PrefixMap{
		"rdf":  RDFNS,
		"rdfs": RDFSNS,
		"owl":  OWLNS,
		"xsd":  XSDNS,
	}
}

// shorten returns the prefixed form of an IRI if a registered namespace is a
// prefix of it and the remainder is a simple local name.
func (pm PrefixMap) shorten(i IRI) (string, bool) {
	s := string(i)
	for label, ns := range pm {
		if strings.HasPrefix(s, ns) {
			local := s[len(ns):]
			if local != "" && isLocalName(local) {
				return label + ":" + local, true
			}
		}
	}
	return "", false
}

func isLocalName(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	// A trailing dot would be consumed as a statement terminator.
	return !strings.HasSuffix(s, ".")
}

// WriteTurtle serializes the graph as Turtle, grouping statements by subject
// and abbreviating with the supplied prefixes (DefaultPrefixes if nil).
func WriteTurtle(w io.Writer, g *Graph, prefixes PrefixMap) error {
	if prefixes == nil {
		prefixes = DefaultPrefixes()
	}
	labels := make([]string, 0, len(prefixes))
	for l := range prefixes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		if _, err := fmt.Fprintf(w, "@prefix %s: <%s> .\n", l, prefixes[l]); err != nil {
			return err
		}
	}
	if len(labels) > 0 {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}

	triples := g.All()
	bySubject := make(map[string][]Triple)
	var order []string
	for _, t := range triples {
		k := t.Subject.Key()
		if _, ok := bySubject[k]; !ok {
			order = append(order, k)
		}
		bySubject[k] = append(bySubject[k], t)
	}
	sort.Strings(order)

	term := func(t Term) string {
		if iri, ok := t.(IRI); ok {
			if iri == RDFType {
				return "a"
			}
			if short, ok := prefixes.shorten(iri); ok {
				return short
			}
		}
		if lit, ok := t.(Literal); ok && lit.Lang == "" && lit.Datatype != "" && lit.Datatype != XSDString {
			if short, ok := prefixes.shorten(lit.Datatype); ok {
				return `"` + escapeLiteral(lit.Value) + `"^^` + short
			}
		}
		return t.String()
	}

	for _, subjKey := range order {
		ts := bySubject[subjKey]
		// Group by predicate to use ';' and ',' abbreviations.
		byPred := make(map[string][]Triple)
		var predOrder []string
		for _, t := range ts {
			k := term(t.Predicate)
			if _, ok := byPred[k]; !ok {
				predOrder = append(predOrder, k)
			}
			byPred[k] = append(byPred[k], t)
		}
		sort.Strings(predOrder)
		// rdf:type first, per convention.
		for i, p := range predOrder {
			if p == "a" && i != 0 {
				copy(predOrder[1:i+1], predOrder[:i])
				predOrder[0] = "a"
				break
			}
		}

		if _, err := fmt.Fprintf(w, "%s", term(ts[0].Subject)); err != nil {
			return err
		}
		for pi, p := range predOrder {
			sep := " ;\n    "
			if pi == 0 {
				sep = " "
			}
			objs := make([]string, 0, len(byPred[p]))
			for _, t := range byPred[p] {
				objs = append(objs, term(t.Object))
			}
			if _, err := fmt.Fprintf(w, "%s%s %s", sep, p, strings.Join(objs, ", ")); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, " .\n"); err != nil {
			return err
		}
	}
	return nil
}

// TurtleString returns the Turtle serialization of g.
func TurtleString(g *Graph, prefixes PrefixMap) string {
	var b strings.Builder
	//lint:ignore errcheck strings.Builder never fails, so WriteTurtle cannot either
	_ = WriteTurtle(&b, g, prefixes)
	return b.String()
}

// ParseTurtle reads a Turtle document into a new graph. The supported subset
// covers what WriteTurtle emits plus common hand-written forms: @prefix and
// @base directives, prefixed names, the 'a' keyword, ';' and ',' statement
// abbreviations, IRIs, blank node labels, and literals with language tags or
// datatypes.
func ParseTurtle(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("rdf: reading turtle: %w", err)
	}
	p := &turtleParser{input: string(data), prefixes: PrefixMap{}, graph: NewGraph()}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.graph, nil
}

type turtleParser struct {
	input    string
	pos      int
	line     int
	prefixes PrefixMap
	base     string
	graph    *Graph
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("rdf: turtle line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *turtleParser) parse() error {
	for {
		p.skipWS()
		if p.pos >= len(p.input) {
			return nil
		}
		if p.peekWord("@prefix") || p.peekWord("PREFIX") {
			if err := p.directivePrefix(); err != nil {
				return err
			}
			continue
		}
		if p.peekWord("@base") || p.peekWord("BASE") {
			if err := p.directiveBase(); err != nil {
				return err
			}
			continue
		}
		if err := p.statement(); err != nil {
			return err
		}
	}
}

func (p *turtleParser) directivePrefix() error {
	atForm := p.peekWord("@prefix")
	p.consumeWord()
	p.skipWS()
	label, err := p.prefixLabel()
	if err != nil {
		return err
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[label] = string(iri)
	p.skipWS()
	if atForm {
		if !p.consume('.') {
			return p.errf("@prefix must end with '.'")
		}
	} else {
		p.consume('.') // optional for SPARQL-style PREFIX
	}
	return nil
}

func (p *turtleParser) directiveBase() error {
	atForm := p.peekWord("@base")
	p.consumeWord()
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = string(iri)
	p.skipWS()
	if atForm && !p.consume('.') {
		return p.errf("@base must end with '.'")
	}
	return nil
}

func (p *turtleParser) statement() error {
	subj, err := p.term(false)
	if err != nil {
		return err
	}
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.term(true)
			if err != nil {
				return err
			}
			if err := p.graph.Add(Triple{Subject: subj, Predicate: pred, Object: obj}); err != nil {
				return p.errf("%v", err)
			}
			p.skipWS()
			if !p.consume(',') {
				break
			}
		}
		if !p.consume(';') {
			break
		}
		p.skipWS()
		// A ';' may be followed directly by '.' (trailing semicolon).
		if p.pos < len(p.input) && p.input[p.pos] == '.' {
			break
		}
	}
	p.skipWS()
	if !p.consume('.') {
		return p.errf("statement must end with '.'")
	}
	return nil
}

func (p *turtleParser) predicate() (Term, error) {
	if p.pos < len(p.input) && p.input[p.pos] == 'a' {
		// 'a' must be followed by whitespace to be the type keyword.
		if p.pos+1 < len(p.input) && isWS(p.input[p.pos+1]) {
			p.pos++
			return RDFType, nil
		}
	}
	t, err := p.term(false)
	if err != nil {
		return nil, err
	}
	if t.Kind() != KindIRI {
		return nil, p.errf("predicate must be an IRI, got %s", t)
	}
	return t, nil
}

// term parses an IRI, prefixed name, blank node, or (if allowLiteral) a
// literal, number, or boolean.
func (p *turtleParser) term(allowLiteral bool) (Term, error) {
	p.skipWS()
	if p.pos >= len(p.input) {
		return nil, p.errf("unexpected end of input")
	}
	c := p.input[p.pos]
	switch {
	case c == '<':
		return p.iriRef()
	case c == '_':
		return p.blankNode()
	case c == '"' || c == '\'':
		if !allowLiteral {
			return nil, p.errf("literal not allowed here")
		}
		return p.literal()
	case allowLiteral && (c == '+' || c == '-' || (c >= '0' && c <= '9')):
		return p.numericLiteral()
	case allowLiteral && (p.peekWord("true") || p.peekWord("false")):
		word := p.consumeWord()
		return Literal{Value: word, Datatype: XSDBoolean}, nil
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) iriRef() (IRI, error) {
	if !p.consume('<') {
		return "", p.errf("expected '<'")
	}
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != '>' {
		if p.input[p.pos] == '\n' {
			return "", p.errf("newline in IRI")
		}
		p.pos++
	}
	if p.pos >= len(p.input) {
		return "", p.errf("unterminated IRI")
	}
	raw := p.input[start:p.pos]
	p.pos++ // '>'
	if p.base != "" && !strings.Contains(raw, "://") && !strings.HasPrefix(raw, "urn:") {
		raw = p.base + raw
	}
	return IRI(raw), nil
}

func (p *turtleParser) blankNode() (BlankNode, error) {
	if !strings.HasPrefix(p.input[p.pos:], "_:") {
		return "", p.errf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.input) && isNameChar(p.input[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("empty blank node label")
	}
	return BlankNode(p.input[start:p.pos]), nil
}

func (p *turtleParser) prefixLabel() (string, error) {
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != ':' && !isWS(p.input[p.pos]) {
		p.pos++
	}
	if p.pos >= len(p.input) || p.input[p.pos] != ':' {
		return "", p.errf("expected ':' in prefix label")
	}
	label := p.input[start:p.pos]
	p.pos++ // ':'
	return label, nil
}

func (p *turtleParser) prefixedName() (IRI, error) {
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != ':' && isNameChar(p.input[p.pos]) {
		p.pos++
	}
	if p.pos >= len(p.input) || p.input[p.pos] != ':' {
		return "", p.errf("expected prefixed name near %q", p.input[start:min(start+12, len(p.input))])
	}
	label := p.input[start:p.pos]
	p.pos++ // ':'
	localStart := p.pos
	for p.pos < len(p.input) && isNameChar(p.input[p.pos]) {
		p.pos++
	}
	local := p.input[localStart:p.pos]
	// A trailing '.' is the statement terminator, not part of the name.
	for strings.HasSuffix(local, ".") {
		local = local[:len(local)-1]
		p.pos--
	}
	ns, ok := p.prefixes[label]
	if !ok {
		return "", p.errf("undeclared prefix %q", label)
	}
	return IRI(ns + local), nil
}

func (p *turtleParser) literal() (Literal, error) {
	quote := p.input[p.pos]
	long := strings.HasPrefix(p.input[p.pos:], strings.Repeat(string(quote), 3))
	var value string
	if long {
		p.pos += 3
		end := strings.Index(p.input[p.pos:], strings.Repeat(string(quote), 3))
		if end < 0 {
			return Literal{}, p.errf("unterminated long literal")
		}
		value = p.input[p.pos : p.pos+end]
		p.pos += end + 3
	} else {
		p.pos++
		var b strings.Builder
		for {
			if p.pos >= len(p.input) {
				return Literal{}, p.errf("unterminated literal")
			}
			c := p.input[p.pos]
			if c == quote {
				p.pos++
				break
			}
			if c == '\\' {
				np := &ntParser{input: p.input, pos: p.pos}
				r, err := np.escape()
				if err != nil {
					return Literal{}, p.errf("%v", err)
				}
				p.pos = np.pos
				b.WriteRune(r)
				continue
			}
			if c == '\n' {
				return Literal{}, p.errf("newline in literal")
			}
			b.WriteByte(c)
			p.pos++
		}
		value = b.String()
	}
	lit := Literal{Value: value}
	if p.pos < len(p.input) && p.input[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.input) && (isNameChar(p.input[p.pos]) || p.input[p.pos] == '-') {
			p.pos++
		}
		lit.Lang = p.input[start:p.pos]
	} else if strings.HasPrefix(p.input[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.term(false)
		if err != nil {
			return Literal{}, err
		}
		iri, ok := dt.(IRI)
		if !ok {
			return Literal{}, p.errf("datatype must be an IRI")
		}
		lit.Datatype = iri
	}
	return lit, nil
}

func (p *turtleParser) numericLiteral() (Literal, error) {
	start := p.pos
	if p.input[p.pos] == '+' || p.input[p.pos] == '-' {
		p.pos++
	}
	sawDot, sawExp := false, false
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		switch {
		case c >= '0' && c <= '9':
			p.pos++
		case c == '.' && !sawDot && !sawExp && p.pos+1 < len(p.input) && p.input[p.pos+1] >= '0' && p.input[p.pos+1] <= '9':
			sawDot = true
			p.pos++
		case (c == 'e' || c == 'E') && !sawExp:
			sawExp = true
			p.pos++
			if p.pos < len(p.input) && (p.input[p.pos] == '+' || p.input[p.pos] == '-') {
				p.pos++
			}
		default:
			goto done
		}
	}
done:
	text := p.input[start:p.pos]
	if text == "" || text == "+" || text == "-" {
		return Literal{}, p.errf("malformed number")
	}
	dt := XSDInteger
	if sawExp {
		dt = XSDDouble
	} else if sawDot {
		dt = XSDDecimal
	}
	return Literal{Value: text, Datatype: dt}, nil
}

func (p *turtleParser) skipWS() {
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case isWS(c):
			p.pos++
		case c == '#':
			for p.pos < len(p.input) && p.input[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) consume(c byte) bool {
	if p.pos < len(p.input) && p.input[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *turtleParser) peekWord(w string) bool {
	if !strings.HasPrefix(p.input[p.pos:], w) {
		return false
	}
	end := p.pos + len(w)
	return end >= len(p.input) || !isNameChar(p.input[end])
}

func (p *turtleParser) consumeWord() string {
	start := p.pos
	for p.pos < len(p.input) && (isNameChar(p.input[p.pos]) || p.input[p.pos] == '@') {
		p.pos++
	}
	return p.input[start:p.pos]
}

func isWS(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.'
}
