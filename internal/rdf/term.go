// Package rdf implements the Resource Description Framework data model used
// by the S2S middleware: terms (IRIs, literals, blank nodes), triples, an
// indexed in-memory graph, and serialization to and from N-Triples and
// Turtle.
//
// The middleware's instance generator emits ontology instances as RDF, and
// the owl package layers the OWL vocabulary on top of this model. Only the
// features required by those layers are implemented, but within that scope
// the model follows the RDF 1.1 abstract syntax.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the concrete type of a Term.
type TermKind int

// Term kinds, in the order IRIs sort before blank nodes before literals.
const (
	KindIRI TermKind = iota + 1
	KindBlank
	KindLiteral
)

func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindBlank:
		return "blank"
	case KindLiteral:
		return "literal"
	default:
		return fmt.Sprintf("TermKind(%d)", int(k))
	}
}

// Term is an RDF term: an IRI, a blank node, or a literal. Terms are value
// types; two terms are equal iff their Key strings are equal.
type Term interface {
	// Kind reports which concrete term this is.
	Kind() TermKind
	// Key returns a string that uniquely identifies the term across all
	// kinds. It is used for map keys and equality.
	Key() string
	// String returns the N-Triples form of the term.
	String() string
}

// IRI is an absolute IRI reference identifying a resource.
type IRI string

// Kind implements Term.
func (IRI) Kind() TermKind { return KindIRI }

// Key implements Term.
func (i IRI) Key() string { return "<" + string(i) + ">" }

// String returns the N-Triples form, e.g. <http://example.org/a>.
func (i IRI) String() string { return "<" + escapeIRI(string(i)) + ">" }

// Local returns the fragment or final path segment of the IRI, the part
// conventionally used as a short display name.
func (i IRI) Local() string {
	s := string(i)
	if idx := strings.LastIndexAny(s, "#/"); idx >= 0 && idx+1 < len(s) {
		return s[idx+1:]
	}
	return s
}

// Namespace returns the IRI up to and including the last '#' or '/'.
func (i IRI) Namespace() string {
	s := string(i)
	if idx := strings.LastIndexAny(s, "#/"); idx >= 0 {
		return s[:idx+1]
	}
	return ""
}

// BlankNode is an existential variable scoped to a single graph.
type BlankNode string

// Kind implements Term.
func (BlankNode) Kind() TermKind { return KindBlank }

// Key implements Term.
func (b BlankNode) Key() string { return "_:" + string(b) }

// String returns the N-Triples form, e.g. _:b0.
func (b BlankNode) String() string { return "_:" + string(b) }

// Literal is an RDF literal: a lexical form plus a datatype IRI and, for
// rdf:langString, a language tag.
type Literal struct {
	// Value is the lexical form.
	Value string
	// Datatype is the datatype IRI. The zero value is interpreted as
	// xsd:string per RDF 1.1.
	Datatype IRI
	// Lang is the language tag; when non-empty the literal's datatype is
	// rdf:langString.
	Lang string
}

// Kind implements Term.
func (Literal) Kind() TermKind { return KindLiteral }

// Key implements Term.
func (l Literal) Key() string { return l.String() }

// String returns the N-Triples form of the literal.
func (l Literal) String() string {
	q := `"` + escapeLiteral(l.Value) + `"`
	switch {
	case l.Lang != "":
		return q + "@" + l.Lang
	case l.Datatype != "" && l.Datatype != XSDString:
		return q + "^^" + l.Datatype.String()
	default:
		return q
	}
}

// EffectiveDatatype returns the literal's datatype, resolving the zero value
// to xsd:string and language-tagged literals to rdf:langString.
func (l Literal) EffectiveDatatype() IRI {
	if l.Lang != "" {
		return RDFLangString
	}
	if l.Datatype == "" {
		return XSDString
	}
	return l.Datatype
}

// String constructs an xsd:string literal.
func String(v string) Literal { return Literal{Value: v} }

// Integer constructs an xsd:integer literal.
func Integer(v int64) Literal {
	return Literal{Value: fmt.Sprintf("%d", v), Datatype: XSDInteger}
}

// Float constructs an xsd:double literal.
func Float(v float64) Literal {
	return Literal{Value: fmt.Sprintf("%g", v), Datatype: XSDDouble}
}

// Bool constructs an xsd:boolean literal.
func Bool(v bool) Literal {
	return Literal{Value: fmt.Sprintf("%t", v), Datatype: XSDBoolean}
}

// LangString constructs an rdf:langString literal.
func LangString(v, lang string) Literal { return Literal{Value: v, Lang: lang} }

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeIRI(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '<', '>', '"', '{', '}', '|', '^', '`', '\\':
			fmt.Fprintf(&b, "\\u%04X", r)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
