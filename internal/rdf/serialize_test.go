package rdf

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func sampleGraph() *Graph {
	g := NewGraph()
	g.MustAdd(T(ex("watch1"), RDFType, ex("Watch")))
	g.MustAdd(T(ex("watch1"), ex("brand"), String("Seiko")))
	g.MustAdd(T(ex("watch1"), ex("case"), String("stainless-steel")))
	g.MustAdd(T(ex("watch1"), ex("price"), Literal{Value: "129.99", Datatype: XSDDecimal}))
	g.MustAdd(T(ex("watch1"), ex("name"), LangString("Mergulhador", "pt")))
	g.MustAdd(T(BlankNode("prov"), ex("supplies"), ex("watch1")))
	return g
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := sampleGraph()
	text := NTriplesString(g)
	parsed, err := ParseNTriples(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseNTriples: %v\ninput:\n%s", err, text)
	}
	if !g.Equal(parsed) {
		t.Fatalf("round trip mismatch:\noriginal:\n%s\nparsed:\n%s", text, NTriplesString(parsed))
	}
}

func TestParseNTriplesSkipsCommentsAndBlankLines(t *testing.T) {
	doc := `
# a comment
<http://e/s> <http://e/p> "v" .

<http://e/s> <http://e/p> _:b0 .
`
	g, err := ParseNTriples(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p> "v"`,             // missing dot
		`<http://e/s> <http://e/p> .`,               // missing object
		`"lit" <http://e/p> "v" .`,                  // literal subject
		`<http://e/s> _:b "v" .`,                    // blank predicate
		`<http://e/s> <http://e/p> "unterminated .`, // bad literal
		`<http://e/s <http://e/p> "v" .`,            // unterminated IRI
		`<http://e/s> <http://e/p> "v" . trailing`,  // trailing junk
		`<http://e/s> <http://e/p> "v"^^"notiri" .`, // datatype not IRI
		`<http://e/s> <http://e/p> "v"@ .`,          // empty lang
		`<http://e/s> <http://e/p> "a\qb" .`,        // unknown escape
		`<http://e/s> <http://e/p> "a\u00Zb" .`,     // bad hex
	}
	for _, doc := range bad {
		if _, err := ParseNTriples(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseNTriples accepted %q", doc)
		}
	}
}

func TestParseNTriplesUnicodeEscapes(t *testing.T) {
	doc := `<http://e/s> <http://e/p> "café \U0001F600" .`
	g, err := ParseNTriples(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := g.All()[0].Object.(Literal)
	if !ok || lit.Value != "café 😀" {
		t.Fatalf("got %v, want café 😀", g.All()[0].Object)
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	g := sampleGraph()
	prefixes := PrefixMap{"ex": "http://example.org/", "xsd": XSDNS, "rdf": RDFNS}
	text := TurtleString(g, prefixes)
	parsed, err := ParseTurtle(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseTurtle: %v\ninput:\n%s", err, text)
	}
	if !g.Equal(parsed) {
		t.Fatalf("round trip mismatch:\nserialized:\n%s\nreparsed:\n%s", text, NTriplesString(parsed))
	}
}

func TestTurtleUsesAbbreviations(t *testing.T) {
	g := sampleGraph()
	text := TurtleString(g, PrefixMap{"ex": "http://example.org/"})
	if !strings.Contains(text, "@prefix ex: <http://example.org/> .") {
		t.Errorf("missing prefix declaration:\n%s", text)
	}
	if !strings.Contains(text, "ex:watch1 a ex:Watch") {
		t.Errorf("rdf:type not abbreviated to 'a' or subject not grouped:\n%s", text)
	}
	if !strings.Contains(text, ";") {
		t.Errorf("predicate groups not abbreviated with ';':\n%s", text)
	}
}

func TestParseTurtleHandWritten(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
# watches
ex:w1 a ex:Watch ;
    ex:brand "Seiko", "Pulsar" ;
    ex:price 129.99 ;
    ex:jewels 17 ;
    ex:waterproof true ;
    ex:depth 2.0e2 ;
    ex:label "diver"@en .
ex:w2 ex:brand "Casio" .
_:p ex:supplies ex:w1 .
`
	g, err := ParseTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 10
	if g.Len() != wantLen {
		t.Fatalf("Len = %d, want %d\n%s", g.Len(), wantLen, NTriplesString(g))
	}
	checks := []Triple{
		T(IRI("http://example.org/w1"), RDFType, IRI("http://example.org/Watch")),
		T(IRI("http://example.org/w1"), IRI("http://example.org/brand"), String("Pulsar")),
		T(IRI("http://example.org/w1"), IRI("http://example.org/price"), Literal{Value: "129.99", Datatype: XSDDecimal}),
		T(IRI("http://example.org/w1"), IRI("http://example.org/jewels"), Literal{Value: "17", Datatype: XSDInteger}),
		T(IRI("http://example.org/w1"), IRI("http://example.org/waterproof"), Literal{Value: "true", Datatype: XSDBoolean}),
		T(IRI("http://example.org/w1"), IRI("http://example.org/depth"), Literal{Value: "2.0e2", Datatype: XSDDouble}),
		T(IRI("http://example.org/w1"), IRI("http://example.org/label"), LangString("diver", "en")),
		T(BlankNode("p"), IRI("http://example.org/supplies"), IRI("http://example.org/w1")),
	}
	for _, tr := range checks {
		if !g.Has(tr) {
			t.Errorf("missing %s", tr)
		}
	}
}

func TestParseTurtleBase(t *testing.T) {
	doc := `
@base <http://shop.example/catalog/> .
@prefix ex: <http://example.org/> .
<w1> ex:brand "Seiko" .
`
	g, err := ParseTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := T(IRI("http://shop.example/catalog/w1"), IRI("http://example.org/brand"), String("Seiko"))
	if !g.Has(want) {
		t.Fatalf("base not applied:\n%s", NTriplesString(g))
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := []string{
		`ex:w1 ex:brand "Seiko" .`,                    // undeclared prefix
		`@prefix ex: <http://e/> ex:a ex:b ex:c .`,    // missing dot after prefix
		`@prefix ex: <http://e/> . ex:a ex:b "open .`, // unterminated literal
		`@prefix ex: <http://e/> . ex:a "lit" ex:c .`, // literal predicate
		`@prefix ex: <http://e/> . ex:a ex:b ex:c`,    // missing final dot
		`@prefix ex: <http://e/> . ex:a ex:b +. `,     // malformed number
	}
	for _, doc := range bad {
		if _, err := ParseTurtle(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseTurtle accepted %q", doc)
		}
	}
}

func TestParseTurtleLongLiteral(t *testing.T) {
	doc := "@prefix ex: <http://e/> .\nex:a ex:desc \"\"\"line one\nline two\"\"\" ."
	g, err := ParseTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := g.All()[0].Object.(Literal)
	if !ok || lit.Value != "line one\nline two" {
		t.Fatalf("long literal parsed as %v", g.All()[0].Object)
	}
}

// Property: every generated graph survives an N-Triples round trip.
func TestNTriplesRoundTripProperty(t *testing.T) {
	f := func(rows []struct {
		S, P uint8
		V    string
	}) bool {
		g := NewGraph()
		for _, r := range rows {
			g.MustAdd(T(ex(fmt.Sprintf("s%d", r.S%16)), ex(fmt.Sprintf("p%d", r.P%4)), String(r.V)))
		}
		parsed, err := ParseNTriples(strings.NewReader(NTriplesString(g)))
		return err == nil && g.Equal(parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every generated graph survives a Turtle round trip.
func TestTurtleRoundTripProperty(t *testing.T) {
	f := func(rows []struct {
		S, P uint8
		N    int16
	}) bool {
		g := NewGraph()
		for _, r := range rows {
			g.MustAdd(T(ex(fmt.Sprintf("s%d", r.S%16)), ex(fmt.Sprintf("p%d", r.P%4)), Integer(int64(r.N))))
		}
		parsed, err := ParseTurtle(strings.NewReader(TurtleString(g, PrefixMap{"ex": "http://example.org/"})))
		return err == nil && g.Equal(parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPrefixMapShorten(t *testing.T) {
	pm := PrefixMap{"ex": "http://example.org/"}
	if got, ok := pm.shorten(IRI("http://example.org/Brand")); !ok || got != "ex:Brand" {
		t.Errorf("shorten = %q, %v", got, ok)
	}
	if _, ok := pm.shorten(IRI("http://other.org/Brand")); ok {
		t.Error("shortened IRI outside namespace")
	}
	// Local names with characters Turtle cannot express stay full.
	if _, ok := pm.shorten(IRI("http://example.org/a b")); ok {
		t.Error("shortened local name with space")
	}
	if _, ok := pm.shorten(IRI("http://example.org/name.")); ok {
		t.Error("shortened local name with trailing dot")
	}
}
