package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIRILocalAndNamespace(t *testing.T) {
	tests := []struct {
		iri       IRI
		local     string
		namespace string
	}{
		{"http://example.org/ns#Brand", "Brand", "http://example.org/ns#"},
		{"http://example.org/products/watch", "watch", "http://example.org/products/"},
		{"urn:isbn:12345", "urn:isbn:12345", ""},
		{"http://example.org/ns#", "http://example.org/ns#", "http://example.org/ns#"},
	}
	for _, tt := range tests {
		if got := tt.iri.Local(); got != tt.local {
			t.Errorf("IRI(%q).Local() = %q, want %q", tt.iri, got, tt.local)
		}
		if got := tt.iri.Namespace(); got != tt.namespace {
			t.Errorf("IRI(%q).Namespace() = %q, want %q", tt.iri, got, tt.namespace)
		}
	}
}

func TestTermKinds(t *testing.T) {
	tests := []struct {
		term Term
		kind TermKind
	}{
		{IRI("http://example.org/a"), KindIRI},
		{BlankNode("b0"), KindBlank},
		{String("hello"), KindLiteral},
	}
	for _, tt := range tests {
		if got := tt.term.Kind(); got != tt.kind {
			t.Errorf("%v.Kind() = %v, want %v", tt.term, got, tt.kind)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if KindIRI.String() != "iri" || KindBlank.String() != "blank" || KindLiteral.String() != "literal" {
		t.Errorf("unexpected TermKind strings: %v %v %v", KindIRI, KindBlank, KindLiteral)
	}
	if got := TermKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("TermKind(99).String() = %q", got)
	}
}

func TestLiteralString(t *testing.T) {
	tests := []struct {
		lit  Literal
		want string
	}{
		{String("plain"), `"plain"`},
		{Integer(42), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{Bool(true), `"true"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
		{LangString("relógio", "pt"), `"relógio"@pt`},
		{String("a\"b\\c\nd"), `"a\"b\\c\nd"`},
		{Literal{Value: "x", Datatype: XSDString}, `"x"`},
	}
	for _, tt := range tests {
		if got := tt.lit.String(); got != tt.want {
			t.Errorf("Literal%+v.String() = %q, want %q", tt.lit, got, tt.want)
		}
	}
}

func TestLiteralEffectiveDatatype(t *testing.T) {
	if dt := String("a").EffectiveDatatype(); dt != XSDString {
		t.Errorf("plain literal datatype = %v, want xsd:string", dt)
	}
	if dt := LangString("a", "en").EffectiveDatatype(); dt != RDFLangString {
		t.Errorf("lang literal datatype = %v, want rdf:langString", dt)
	}
	if dt := Integer(1).EffectiveDatatype(); dt != XSDInteger {
		t.Errorf("integer literal datatype = %v, want xsd:integer", dt)
	}
}

func TestFloatLiteral(t *testing.T) {
	l := Float(3.5)
	if l.Value != "3.5" || l.Datatype != XSDDouble {
		t.Errorf("Float(3.5) = %+v", l)
	}
}

func TestTripleValid(t *testing.T) {
	s := IRI("http://example.org/s")
	p := IRI("http://example.org/p")
	o := String("o")
	if err := T(s, p, o).Valid(); err != nil {
		t.Errorf("valid triple rejected: %v", err)
	}
	if err := T(o, p, o).Valid(); err == nil {
		t.Error("literal subject accepted")
	}
	if err := T(s, BlankNode("b"), o).Valid(); err == nil {
		t.Error("blank predicate accepted")
	}
	if err := (Triple{}).Valid(); err == nil {
		t.Error("nil-term triple accepted")
	}
}

func TestTripleString(t *testing.T) {
	tr := T(IRI("http://e/s"), IRI("http://e/p"), String("v"))
	want := `<http://e/s> <http://e/p> "v" .`
	if got := tr.String(); got != want {
		t.Errorf("Triple.String() = %q, want %q", got, want)
	}
}

// Property: distinct term kinds never collide on Key, and Key is stable.
func TestTermKeyUniqueAcrossKinds(t *testing.T) {
	f := func(s string) bool {
		iri := IRI(s)
		blank := BlankNode(s)
		lit := String(s)
		return iri.Key() != blank.Key() && blank.Key() != lit.Key() && iri.Key() != lit.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: literal escaping round-trips through the N-Triples parser.
func TestLiteralEscapeRoundTrip(t *testing.T) {
	f := func(v string) bool {
		// The N-Triples layer operates on lines; strip other control chars
		// that are never produced by the middleware.
		lit := String(v)
		line := T(IRI("http://e/s"), IRI("http://e/p"), lit).String()
		parsed, err := parseNTriplesLine(line)
		if err != nil {
			return false
		}
		got, ok := parsed.Object.(Literal)
		return ok && got.Value == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
