package rdf

import (
	"fmt"
	"strings"
)

// Triple is an RDF statement. The subject must be an IRI or blank node and
// the predicate an IRI; Valid reports violations.
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// T constructs a triple.
func T(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// Valid reports whether the triple conforms to the RDF abstract syntax.
func (t Triple) Valid() error {
	switch {
	case t.Subject == nil || t.Predicate == nil || t.Object == nil:
		return fmt.Errorf("rdf: triple has nil term")
	case t.Subject.Kind() == KindLiteral:
		return fmt.Errorf("rdf: literal %s cannot be a subject", t.Subject)
	case t.Predicate.Kind() != KindIRI:
		return fmt.Errorf("rdf: predicate %s must be an IRI", t.Predicate)
	default:
		return nil
	}
}

// Key returns a canonical string identifying the triple.
func (t Triple) Key() string {
	var b strings.Builder
	b.WriteString(t.Subject.Key())
	b.WriteByte(' ')
	b.WriteString(t.Predicate.Key())
	b.WriteByte(' ')
	b.WriteString(t.Object.Key())
	return b.String()
}

// String returns the N-Triples form of the statement, including the
// terminating period.
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.Subject, t.Predicate, t.Object)
}
