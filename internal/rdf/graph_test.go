package rdf

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func ex(local string) IRI { return IRI("http://example.org/" + local) }

func TestGraphAddHasRemove(t *testing.T) {
	g := NewGraph()
	tr := T(ex("s"), ex("p"), String("v"))
	if g.Has(tr) {
		t.Fatal("empty graph reports Has")
	}
	if err := g.Add(tr); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !g.Has(tr) {
		t.Fatal("added triple not found")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	// Duplicate add is a no-op.
	if err := g.Add(tr); err != nil {
		t.Fatalf("duplicate Add: %v", err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len after duplicate = %d, want 1", g.Len())
	}
	if !g.Remove(tr) {
		t.Fatal("Remove returned false for present triple")
	}
	if g.Remove(tr) {
		t.Fatal("Remove returned true for absent triple")
	}
	if g.Len() != 0 {
		t.Fatalf("Len after remove = %d, want 0", g.Len())
	}
}

func TestGraphAddInvalid(t *testing.T) {
	g := NewGraph()
	if err := g.Add(T(String("lit"), ex("p"), ex("o"))); err == nil {
		t.Fatal("invalid triple accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd did not panic on invalid triple")
		}
	}()
	g.MustAdd(T(String("lit"), ex("p"), ex("o")))
}

func TestGraphMatch(t *testing.T) {
	g := NewGraph()
	g.MustAdd(T(ex("w1"), ex("brand"), String("Seiko")))
	g.MustAdd(T(ex("w1"), ex("case"), String("stainless-steel")))
	g.MustAdd(T(ex("w2"), ex("brand"), String("Casio")))
	g.MustAdd(T(ex("w2"), RDFType, ex("Watch")))
	g.MustAdd(T(ex("w1"), RDFType, ex("Watch")))

	tests := []struct {
		name    string
		s, p, o Term
		want    int
	}{
		{"all", nil, nil, nil, 5},
		{"by subject", ex("w1"), nil, nil, 3},
		{"by predicate", nil, ex("brand"), nil, 2},
		{"by object", nil, nil, ex("Watch"), 2},
		{"subject+predicate", ex("w1"), ex("brand"), nil, 1},
		{"no match", ex("w3"), nil, nil, 0},
		{"mismatched combo", ex("w1"), ex("brand"), String("Casio"), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := len(g.Match(tt.s, tt.p, tt.o)); got != tt.want {
				t.Errorf("Match(%v,%v,%v) returned %d triples, want %d", tt.s, tt.p, tt.o, got, tt.want)
			}
		})
	}
}

func TestGraphMatchDeterministic(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 50; i++ {
		g.MustAdd(T(ex(fmt.Sprintf("s%02d", i)), ex("p"), Integer(int64(i))))
	}
	first := g.All()
	for trial := 0; trial < 5; trial++ {
		again := g.All()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("iteration order unstable at %d: %v vs %v", i, first[i], again[i])
			}
		}
	}
}

func TestGraphObjectsSubjectsFirstObject(t *testing.T) {
	g := NewGraph()
	g.MustAdd(T(ex("w1"), ex("brand"), String("Seiko")))
	g.MustAdd(T(ex("w1"), ex("brand"), String("Casio")))
	g.MustAdd(T(ex("w2"), ex("brand"), String("Seiko")))

	if got := g.Objects(ex("w1"), ex("brand")); len(got) != 2 {
		t.Errorf("Objects = %v, want 2 entries", got)
	}
	if got := g.Subjects(ex("brand"), String("Seiko")); len(got) != 2 {
		t.Errorf("Subjects = %v, want 2 entries", got)
	}
	if got := g.FirstObject(ex("w2"), ex("brand")); got == nil || got.Key() != String("Seiko").Key() {
		t.Errorf("FirstObject = %v, want \"Seiko\"", got)
	}
	if got := g.FirstObject(ex("nope"), ex("brand")); got != nil {
		t.Errorf("FirstObject for absent subject = %v, want nil", got)
	}
}

func TestGraphCloneAndEqual(t *testing.T) {
	g := NewGraph()
	g.MustAdd(T(ex("s"), ex("p"), String("v")))
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.MustAdd(T(ex("s2"), ex("p"), String("v")))
	if g.Equal(c) {
		t.Fatal("graphs with different sizes reported equal")
	}
	if g.Len() != 1 {
		t.Fatal("mutating clone affected original")
	}
	// Same size, different content.
	d := NewGraph()
	d.MustAdd(T(ex("other"), ex("p"), String("v")))
	if g.Equal(d) {
		t.Fatal("different graphs reported equal")
	}
}

func TestGraphMerge(t *testing.T) {
	a := NewGraph()
	a.MustAdd(T(ex("s"), ex("p"), String("1")))
	b := NewGraph()
	b.MustAdd(T(ex("s"), ex("p"), String("1")))
	b.MustAdd(T(ex("s"), ex("p"), String("2")))
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", a.Len())
	}
}

func TestGraphNewBlankUnique(t *testing.T) {
	g := NewGraph()
	seen := make(map[BlankNode]bool)
	for i := 0; i < 100; i++ {
		b := g.NewBlank()
		if seen[b] {
			t.Fatalf("duplicate blank node %s", b)
		}
		seen[b] = true
	}
}

func TestGraphConcurrentAccess(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.MustAdd(T(ex(fmt.Sprintf("s%d-%d", w, i)), ex("p"), Integer(int64(i))))
				if i%20 == 0 {
					g.Match(nil, ex("p"), nil)
				}
				g.NewBlank()
			}
		}(w)
	}
	wg.Wait()
	if g.Len() != 8*200 {
		t.Fatalf("Len = %d, want %d", g.Len(), 8*200)
	}
}

// Property: adding then removing any batch of valid triples restores the
// original size, and index lookups agree with full scans.
func TestGraphIndexConsistency(t *testing.T) {
	f := func(subjects, objects []uint8) bool {
		g := NewGraph()
		var added []Triple
		for i, s := range subjects {
			var o Term
			if i < len(objects) {
				o = Integer(int64(objects[i]))
			} else {
				o = String("x")
			}
			tr := T(ex(fmt.Sprintf("s%d", s%8)), ex(fmt.Sprintf("p%d", i%3)), o)
			if err := g.Add(tr); err != nil {
				return false
			}
			added = append(added, tr)
		}
		// Index lookup must agree with a linear filter over All().
		for _, tr := range added {
			byIdx := g.Match(tr.Subject, nil, nil)
			count := 0
			for _, u := range g.All() {
				if u.Subject.Key() == tr.Subject.Key() {
					count++
				}
			}
			if len(byIdx) != count {
				return false
			}
		}
		for _, tr := range added {
			g.Remove(tr)
		}
		return g.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
