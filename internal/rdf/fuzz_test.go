package rdf

import (
	"strings"
	"testing"
)

// FuzzParseTurtle checks the Turtle parser never panics and that anything
// it accepts re-serializes and re-parses to the same graph.
func FuzzParseTurtle(f *testing.F) {
	seeds := []string{
		"@prefix ex: <http://e/> .\nex:a ex:b ex:c .",
		`@prefix ex: <http://e/> . ex:a ex:b "lit"@en, 42, 3.14, true .`,
		"@base <http://b/> . <x> <y> <z> .",
		"_:b0 <http://e/p> \"a\\nb\" .",
		"@prefix ex: <http://e/> .\nex:a ex:b ex:c ; ex:d ex:e .",
		"# comment only",
		`@prefix ex: <http://e/> . ex:a ex:desc """long
text""" .`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseTurtle(strings.NewReader(input))
		if err != nil {
			return
		}
		out := TurtleString(g, nil)
		g2, err := ParseTurtle(strings.NewReader(out))
		if err != nil {
			t.Fatalf("accepted input produced unparseable output: %v\ninput: %q\noutput: %q", err, input, out)
		}
		if !g.Equal(g2) {
			t.Fatalf("round trip changed graph for %q", input)
		}
	})
}

// FuzzParseNTriples checks the N-Triples parser for panics and round trips.
func FuzzParseNTriples(f *testing.F) {
	seeds := []string{
		`<http://e/s> <http://e/p> "v" .`,
		`<http://e/s> <http://e/p> <http://e/o> .`,
		`_:b <http://e/p> "x"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`<http://e/s> <http://e/p> "café"@fr .`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseNTriples(strings.NewReader(input))
		if err != nil {
			return
		}
		g2, err := ParseNTriples(strings.NewReader(NTriplesString(g)))
		if err != nil {
			t.Fatalf("accepted input produced unparseable output: %v (input %q)", err, input)
		}
		if !g.Equal(g2) {
			t.Fatalf("round trip changed graph for %q", input)
		}
	})
}
