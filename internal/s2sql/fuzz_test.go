package s2sql

import (
	"testing"

	"repro/internal/ontology"
)

// FuzzParse checks the S2SQL parser never panics, accepted queries print
// to a stable fixed point, and planning against the paper ontology never
// panics.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT product WHERE brand='Seiko' AND case = 'stainless-steel'",
		"SELECT watch WHERE price <= 200 AND water_resistance >= 100",
		"SELECT provider",
		"SELECT product WHERE thing.product.brand != 'x'",
		"SELECT product WHERE model LIKE 'Dive%'",
		"SELECT product WHERE waterproof = TRUE",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	ont := ontology.Paper()
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form unparseable: %q -> %q: %v", input, printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("print not a fixed point: %q -> %q", printed, q2.String())
		}
		// Planning must never panic, only error.
		_, _ = PlanQuery(q, ont)
	})
}
