package s2sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
	"repro/internal/sqllang"
)

// This file holds the one evaluator for planned WHERE conditions against
// raw extracted values. Two layers share it: the instance generator's
// residual filter (internal/instance) and the query planner's
// record-scoped pushdown filters (internal/planner). Sharing is what
// makes pushdown sound-by-construction: a record the planner drops at
// the source is exactly a record the instance layer would have rejected,
// byte-identical error text included.
//
// Error messages keep their historical "instance:" prefix — the instance
// generator is the user-visible surface that reports them, and golden
// outputs pin the text.

// EvalCondition reports whether a single raw extracted value satisfies a
// planned condition. Comparison semantics follow the attribute's
// declared datatype: numeric XSD types parse and compare as floats,
// xsd:boolean compares truthiness, everything else compares as trimmed
// strings; LIKE always pattern-matches case-insensitively.
func EvalCondition(raw string, c PlannedCondition) (bool, error) {
	dt := c.Attribute.Datatype
	numeric := dt == rdf.XSDInteger || dt == rdf.XSDDecimal || dt == rdf.XSDDouble

	if c.Op == OpLike {
		return LikeMatch(raw, c.Value.Text), nil
	}

	if numeric {
		have, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return false, fmt.Errorf("instance: extracted value %q for %s is not numeric", raw, c.Attribute.ID())
		}
		want, err := strconv.ParseFloat(c.Value.Text, 64)
		if err != nil {
			return false, fmt.Errorf("instance: constraint %q for %s is not numeric", c.Value.Text, c.Attribute.ID())
		}
		switch c.Op {
		case OpEq:
			return have == want, nil
		case OpNe:
			return have != want, nil
		case OpLt:
			return have < want, nil
		case OpGt:
			return have > want, nil
		case OpLe:
			return have <= want, nil
		case OpGe:
			return have >= want, nil
		}
	}

	if dt == rdf.XSDBoolean {
		have := parseBoolish(raw)
		want := parseBoolish(c.Value.Text)
		if c.Value.Kind == sqllang.LitBool {
			want = strings.EqualFold(c.Value.Text, "TRUE")
		}
		switch c.Op {
		case OpEq:
			return have == want, nil
		case OpNe:
			return have != want, nil
		default:
			return false, fmt.Errorf("instance: operator %s is not defined for boolean attribute %s", c.Op, c.Attribute.ID())
		}
	}

	// String comparison; equality trims surrounding whitespace, which web
	// extraction frequently leaves behind.
	have := strings.TrimSpace(raw)
	want := c.Value.Text
	switch c.Op {
	case OpEq:
		return have == want, nil
	case OpNe:
		return have != want, nil
	default:
		return false, fmt.Errorf("instance: operator %s is not defined for string attribute %s", c.Op, c.Attribute.ID())
	}
}

// ConditionCanError reports whether EvalCondition could return an error
// for some extracted value under this condition — it mirrors the error
// branches above exactly. The planner uses it as a prune gate: a source
// group may be dropped without running its rules only when every
// condition evaluated before the deciding one is error-free, so the
// instance layer's error output cannot differ.
func ConditionCanError(c PlannedCondition) bool {
	if c.Op == OpLike {
		return false
	}
	dt := c.Attribute.Datatype
	if dt == rdf.XSDInteger || dt == rdf.XSDDecimal || dt == rdf.XSDDouble {
		return true
	}
	// Boolean and string attributes evaluate Eq/Ne without error and
	// reject every other operator with one.
	return c.Op != OpEq && c.Op != OpNe
}

func parseBoolish(s string) bool {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "true", "1", "yes", "y":
		return true
	default:
		return false
	}
}

// LikeMatch implements SQL LIKE (% and _) case-insensitively over the
// trimmed value.
func LikeMatch(s, pattern string) bool {
	rs, rp := []rune(strings.ToLower(strings.TrimSpace(s))), []rune(strings.ToLower(pattern))
	memo := map[[2]int]bool{}
	var match func(i, j int) bool
	match = func(i, j int) bool {
		if j == len(rp) {
			return i == len(rs)
		}
		key := [2]int{i, j}
		if v, ok := memo[key]; ok {
			return v
		}
		var out bool
		switch rp[j] {
		case '%':
			out = match(i, j+1) || (i < len(rs) && match(i+1, j))
		case '_':
			out = i < len(rs) && match(i+1, j+1)
		default:
			out = i < len(rs) && rs[i] == rp[j] && match(i+1, j+1)
		}
		memo[key] = out
		return out
	}
	return match(0, 0)
}
