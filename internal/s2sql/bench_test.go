package s2sql

import (
	"testing"

	"repro/internal/ontology"
)

// BenchmarkParsePlanPaperQuery measures the query handler on the paper's
// worked example.
func BenchmarkParsePlanPaperQuery(b *testing.B) {
	ont := ontology.Paper()
	const q = "SELECT product WHERE brand='Seiko' AND case='stainless-steel'"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := ParseAndPlan(q, ont)
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Attributes) == 0 {
			b.Fatal("empty plan")
		}
	}
}
