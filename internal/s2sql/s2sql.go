// Package s2sql implements the Syntactic-to-Semantic Query Language (paper
// §2.5), the middleware's single point of entry. S2SQL is a simplified SQL:
// data location is transparent, so FROM and related operators do not exist.
// A query names only an ontology class and attribute constraints:
//
//	SELECT <ontology class>
//	WHERE <attribute><operator><constraint>
//	AND   <attribute><operator><constraint>
//
// The paper's example — SELECT product WHERE brand='Seiko' AND
// case='stainless-steel' — parses, validates against the ontology, and
// plans into the attribute list the Extractor Manager consumes (§2.4 step
// 1: "the extraction data must be a set of attributes... determined by the
// query handler").
package s2sql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/sqllang"
)

// Op is a comparison operator usable in a WHERE condition.
type Op string

// Supported operators.
const (
	OpEq   Op = "="
	OpNe   Op = "!="
	OpLt   Op = "<"
	OpGt   Op = ">"
	OpLe   Op = "<="
	OpGe   Op = ">="
	OpLike Op = "LIKE"
)

// Condition is one attribute constraint. Attribute may be a simple name
// ("brand") resolved in the queried class's scope, or a full dotted ID
// ("thing.product.brand").
type Condition struct {
	Attribute string
	Op        Op
	Value     Literal
}

// Literal is a constraint constant.
type Literal struct {
	// Kind is the literal kind (string, number, or boolean).
	Kind sqllang.LiteralKind
	// Text is the literal text (unquoted for strings).
	Text string
}

// String renders the literal in S2SQL syntax.
func (l Literal) String() string {
	if l.Kind == sqllang.LitString {
		return "'" + strings.ReplaceAll(l.Text, "'", "''") + "'"
	}
	return l.Text
}

// Query is a parsed S2SQL query.
type Query struct {
	// Class is the ontology class named in SELECT.
	Class string
	// Conditions are the AND-joined WHERE constraints, possibly empty.
	Conditions []Condition
}

// String renders the query in canonical S2SQL syntax.
func (q Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(q.Class)
	for i, c := range q.Conditions {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(c.Attribute)
		b.WriteByte(' ')
		b.WriteString(string(c.Op))
		b.WriteByte(' ')
		b.WriteString(c.Value.String())
	}
	return b.String()
}

// Parse parses an S2SQL query. The grammar deliberately rejects FROM: data
// location is not part of the language.
func Parse(input string) (Query, error) {
	toks, err := sqllang.Lex(input)
	if err != nil {
		return Query{}, fmt.Errorf("s2sql: %w", err)
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return Query{}, err
	}
	return q, nil
}

type parser struct {
	toks []sqllang.Token
	pos  int
}

func (p *parser) peek() sqllang.Token { return p.toks[p.pos] }

func (p *parser) next() sqllang.Token {
	t := p.toks[p.pos]
	if t.Kind != sqllang.TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind sqllang.TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind sqllang.TokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("s2sql: at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) query() (Query, error) {
	var q Query
	if !p.accept(sqllang.TokKeyword, "SELECT") {
		return q, p.errf("query must start with SELECT, got %s", p.peek())
	}
	class, err := p.name()
	if err != nil {
		return q, err
	}
	q.Class = class
	if p.accept(sqllang.TokKeyword, "FROM") {
		return q, p.errf("S2SQL has no FROM clause: data location is transparent (paper §2.5)")
	}
	if p.accept(sqllang.TokKeyword, "WHERE") {
		for {
			cond, err := p.condition()
			if err != nil {
				return q, err
			}
			q.Conditions = append(q.Conditions, cond)
			if !p.accept(sqllang.TokKeyword, "AND") {
				break
			}
		}
	}
	if !p.at(sqllang.TokEOF, "") {
		return q, p.errf("unexpected %s after query", p.peek())
	}
	return q, nil
}

// name parses an attribute or class name, allowing dotted paths.
func (p *parser) name() (string, error) {
	// "case" collides with no keyword in our lexer, but ontology attribute
	// names may collide with SQL keywords generally; accept keywords as
	// names when they appear where a name is required.
	t := p.peek()
	if t.Kind != sqllang.TokIdent && t.Kind != sqllang.TokKeyword {
		return "", p.errf("expected a name, got %s", t)
	}
	p.next()
	parts := []string{t.Text}
	for p.accept(sqllang.TokPunct, ".") {
		nt := p.peek()
		if nt.Kind != sqllang.TokIdent && nt.Kind != sqllang.TokKeyword {
			return "", p.errf("expected a name after '.', got %s", nt)
		}
		p.next()
		parts = append(parts, nt.Text)
	}
	return strings.Join(parts, "."), nil
}

func (p *parser) condition() (Condition, error) {
	attr, err := p.name()
	if err != nil {
		return Condition{}, err
	}
	var op Op
	switch {
	case p.accept(sqllang.TokPunct, "="):
		op = OpEq
	case p.accept(sqllang.TokPunct, "!="):
		op = OpNe
	case p.accept(sqllang.TokPunct, "<="):
		op = OpLe
	case p.accept(sqllang.TokPunct, ">="):
		op = OpGe
	case p.accept(sqllang.TokPunct, "<"):
		op = OpLt
	case p.accept(sqllang.TokPunct, ">"):
		op = OpGt
	case p.accept(sqllang.TokKeyword, "LIKE"):
		op = OpLike
	default:
		return Condition{}, p.errf("expected an operator after %q, got %s", attr, p.peek())
	}
	t := p.peek()
	var lit Literal
	switch {
	case t.Kind == sqllang.TokString:
		lit = Literal{Kind: sqllang.LitString, Text: t.Text}
		p.next()
	case t.Kind == sqllang.TokNumber:
		lit = Literal{Kind: sqllang.LitNumber, Text: t.Text}
		p.next()
	case p.accept(sqllang.TokKeyword, "TRUE"):
		lit = Literal{Kind: sqllang.LitBool, Text: "TRUE"}
	case p.accept(sqllang.TokKeyword, "FALSE"):
		lit = Literal{Kind: sqllang.LitBool, Text: "FALSE"}
	default:
		return Condition{}, p.errf("expected a constraint value, got %s", t)
	}
	return Condition{Attribute: attr, Op: op, Value: lit}, nil
}

// PlannedCondition is a condition with its attribute resolved against the
// ontology.
type PlannedCondition struct {
	Attribute *ontology.Attribute
	Op        Op
	Value     Literal
}

// Plan is the query handler's output (paper Figure 5 step 1): the resolved
// class, the closure of output classes, the full attribute list to extract,
// and the typed conditions to apply to assembled instances.
type Plan struct {
	Query Query
	// Class is the resolved queried class.
	Class *ontology.Class
	// OutputClasses is the class closure the answer is built from: the
	// queried class, its subclasses, and directly related classes (paper
	// §2.5: "all products have a Provider, and therefore the output classes
	// will be Product, watch, and Provider").
	OutputClasses []*ontology.Class
	// Attributes is the set of attributes to extract: every attribute
	// declared on or inherited by the output classes, deduplicated, in ID
	// order.
	Attributes []*ontology.Attribute
	// Conditions are the resolved constraints.
	Conditions []PlannedCondition
}

// AttributeIDs returns the plan's attribute list as dotted IDs.
func (p *Plan) AttributeIDs() []string {
	out := make([]string, len(p.Attributes))
	for i, a := range p.Attributes {
		out[i] = a.ID()
	}
	return out
}

// PlanQuery resolves a parsed query against an ontology.
func PlanQuery(q Query, ont *ontology.Ontology) (*Plan, error) {
	class, ok := ont.Class(q.Class)
	if !ok {
		return nil, fmt.Errorf("s2sql: class %q is not defined in ontology %q", q.Class, ont.Name)
	}
	plan := &Plan{Query: q, Class: class}

	// Output closure: class, descendants, then relation targets from the
	// closure and the class's ancestors (a relation declared on a
	// superclass applies to the subclass).
	seen := map[*ontology.Class]bool{}
	add := func(c *ontology.Class) {
		if !seen[c] {
			seen[c] = true
			plan.OutputClasses = append(plan.OutputClasses, c)
		}
	}
	add(class)
	for _, d := range class.Descendants() {
		add(d)
	}
	withAncestors := append([]*ontology.Class{}, plan.OutputClasses...)
	withAncestors = append(withAncestors, class.Ancestors()...)
	for _, c := range withAncestors {
		for _, r := range c.Relations {
			add(r.To)
		}
	}

	// Attribute list: all attributes (declared + inherited) of every output
	// class, deduplicated.
	attrSeen := map[string]bool{}
	for _, c := range plan.OutputClasses {
		for _, a := range c.AllAttributes() {
			if !attrSeen[a.ID()] {
				attrSeen[a.ID()] = true
				plan.Attributes = append(plan.Attributes, a)
			}
		}
	}
	sortAttributes(plan.Attributes)

	// Resolve and type-check conditions.
	for _, cond := range q.Conditions {
		var attr *ontology.Attribute
		var err error
		if strings.Contains(cond.Attribute, ".") {
			a, ok := ont.Attribute(cond.Attribute)
			if !ok {
				return nil, fmt.Errorf("s2sql: attribute %q is not defined", cond.Attribute)
			}
			attr = a
		} else {
			attr, err = ont.ResolveAttributeName(class.Name, cond.Attribute)
			if err != nil {
				return nil, fmt.Errorf("s2sql: %w", err)
			}
		}
		if err := checkOperandTypes(attr, cond); err != nil {
			return nil, err
		}
		plan.Conditions = append(plan.Conditions, PlannedCondition{
			Attribute: attr, Op: cond.Op, Value: cond.Value,
		})
	}
	return plan, nil
}

// ParseAndPlan parses then plans in one step.
func ParseAndPlan(input string, ont *ontology.Ontology) (*Plan, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return PlanQuery(q, ont)
}

func checkOperandTypes(attr *ontology.Attribute, cond Condition) error {
	numeric := attr.Datatype == rdf.XSDInteger || attr.Datatype == rdf.XSDDecimal || attr.Datatype == rdf.XSDDouble
	switch cond.Op {
	case OpLt, OpGt, OpLe, OpGe:
		if !numeric {
			return fmt.Errorf("s2sql: operator %s needs a numeric attribute, but %s is %s",
				cond.Op, attr.ID(), attr.Datatype.Local())
		}
		if cond.Value.Kind != sqllang.LitNumber {
			return fmt.Errorf("s2sql: operator %s on %s needs a numeric constraint, got %s",
				cond.Op, attr.ID(), cond.Value.String())
		}
	case OpLike:
		if numeric {
			return fmt.Errorf("s2sql: LIKE needs a string attribute, but %s is %s",
				attr.ID(), attr.Datatype.Local())
		}
		if cond.Value.Kind != sqllang.LitString {
			return fmt.Errorf("s2sql: LIKE needs a string pattern, got %s", cond.Value.String())
		}
	case OpEq, OpNe:
		if numeric && cond.Value.Kind == sqllang.LitString {
			if _, err := strconv.ParseFloat(cond.Value.Text, 64); err != nil {
				return fmt.Errorf("s2sql: attribute %s is numeric but constraint %s is not",
					attr.ID(), cond.Value.String())
			}
		}
	}
	return nil
}

func sortAttributes(attrs []*ontology.Attribute) {
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].ID() < attrs[j].ID() })
}
