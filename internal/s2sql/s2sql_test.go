package s2sql

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ontology"
	"repro/internal/sqllang"
)

// TestParsePaperQuery parses the exact query of paper §2.5.
func TestParsePaperQuery(t *testing.T) {
	q, err := Parse("SELECT product WHERE brand='Seiko' AND case = 'stainless-steel'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Class != "product" {
		t.Errorf("class = %q", q.Class)
	}
	if len(q.Conditions) != 2 {
		t.Fatalf("conditions = %+v", q.Conditions)
	}
	if q.Conditions[0].Attribute != "brand" || q.Conditions[0].Op != OpEq || q.Conditions[0].Value.Text != "Seiko" {
		t.Errorf("condition 0 = %+v", q.Conditions[0])
	}
	if q.Conditions[1].Attribute != "case" || q.Conditions[1].Value.Text != "stainless-steel" {
		t.Errorf("condition 1 = %+v", q.Conditions[1])
	}
}

func TestParseOperatorsAndLiterals(t *testing.T) {
	q, err := Parse("SELECT watch WHERE price <= 200 AND price > 10 AND brand != 'Casio' AND model LIKE 'Dive%' AND water_resistance >= 100 AND movement = 'auto' AND case < 5")
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{OpLe, OpGt, OpNe, OpLike, OpGe, OpEq, OpLt}
	for i, want := range ops {
		if q.Conditions[i].Op != want {
			t.Errorf("condition %d op = %s, want %s", i, q.Conditions[i].Op, want)
		}
	}
	q2, err := Parse("SELECT watch WHERE waterproof = TRUE")
	if err != nil || q2.Conditions[0].Value.Kind != sqllang.LitBool {
		t.Errorf("bool literal: %+v, %v", q2, err)
	}
}

func TestParseDottedAttributeIDs(t *testing.T) {
	q, err := Parse("SELECT product WHERE thing.product.brand = 'Seiko'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Conditions[0].Attribute != "thing.product.brand" {
		t.Errorf("attribute = %q", q.Conditions[0].Attribute)
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse("SELECT provider")
	if err != nil || q.Class != "provider" || len(q.Conditions) != 0 {
		t.Fatalf("q = %+v, %v", q, err)
	}
}

func TestParseRejectsFrom(t *testing.T) {
	_, err := Parse("SELECT product FROM sources WHERE brand = 'Seiko'")
	if err == nil || !strings.Contains(err.Error(), "FROM") {
		t.Fatalf("err = %v, want FROM rejection", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"product WHERE brand='x'",
		"SELECT",
		"SELECT product WHERE",
		"SELECT product WHERE brand",
		"SELECT product WHERE brand =",
		"SELECT product WHERE brand = 'x' AND",
		"SELECT product WHERE brand = 'x' OR case = 'y'", // AND-only grammar
		"SELECT product extra",
		"SELECT product WHERE brand = 'x' trailing",
		"SELECT product WHERE brand == 'x'",
		"SELECT 42",
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) succeeded", input)
		}
	}
}

func TestQueryString(t *testing.T) {
	in := "SELECT product WHERE brand = 'Sei''ko' AND price <= 200"
	q, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	printed := q.String()
	q2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	if q2.String() != printed {
		t.Errorf("print not stable: %q vs %q", printed, q2.String())
	}
}

// TestPlanPaperQuery verifies the paper's worked example: the output classes
// of SELECT product ... are Product, watch, and Provider.
func TestPlanPaperQuery(t *testing.T) {
	ont := ontology.Paper()
	plan, err := ParseAndPlan("SELECT product WHERE brand='Seiko' AND case='stainless-steel'", ont)
	if err != nil {
		t.Fatal(err)
	}
	var classNames []string
	for _, c := range plan.OutputClasses {
		classNames = append(classNames, c.Name)
	}
	joined := strings.Join(classNames, " ")
	for _, want := range []string{"product", "watch", "provider"} {
		if !strings.Contains(joined, want) {
			t.Errorf("output classes %v missing %s", classNames, want)
		}
	}
	if strings.Contains(joined, "thing") {
		t.Errorf("bare root class in output: %v", classNames)
	}

	// The attribute list covers the watch and provider attributes.
	ids := strings.Join(plan.AttributeIDs(), " ")
	for _, want := range []string{"thing.product.brand", "thing.product.watch.case", "thing.provider.name"} {
		if !strings.Contains(ids, want) {
			t.Errorf("attribute list missing %s: %v", want, plan.AttributeIDs())
		}
	}

	// Conditions resolve to unique attributes: case → thing.product.watch.case.
	if len(plan.Conditions) != 2 {
		t.Fatalf("conditions = %+v", plan.Conditions)
	}
	if got := plan.Conditions[1].Attribute.ID(); got != "thing.product.watch.case" {
		t.Errorf("resolved case = %s", got)
	}
}

func TestPlanQueryOnSubclassAndRelated(t *testing.T) {
	ont := ontology.Paper()
	plan, err := ParseAndPlan("SELECT watch WHERE brand = 'Seiko'", ont)
	if err != nil {
		t.Fatal(err)
	}
	// The watch closure still includes provider via the relation inherited
	// from product.
	found := false
	for _, c := range plan.OutputClasses {
		if c.Name == "provider" {
			found = true
		}
	}
	if !found {
		t.Errorf("provider missing from watch closure: %v", plan.OutputClasses)
	}
	// Inherited attribute brand resolves from the product superclass.
	if plan.Conditions[0].Attribute.ID() != "thing.product.brand" {
		t.Errorf("brand resolved to %s", plan.Conditions[0].Attribute.ID())
	}
}

func TestPlanProviderQueryHasNoProductAttributes(t *testing.T) {
	ont := ontology.Paper()
	plan, err := ParseAndPlan("SELECT provider", ont)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range plan.AttributeIDs() {
		if strings.Contains(id, "product") {
			t.Errorf("provider query extracts product attribute %s", id)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	ont := ontology.Paper()
	cases := []string{
		"SELECT gadget",                                // unknown class
		"SELECT product WHERE serial = 'x'",            // unknown attribute
		"SELECT product WHERE thing.product.sku = 'x'", // unknown dotted ID
		"SELECT product WHERE brand < 10",              // ordering on string attribute
		"SELECT product WHERE price < 'cheap'",         // non-numeric constraint... parses as string
		"SELECT product WHERE price LIKE 'x'",          // LIKE on numeric is a plan error? price is decimal
		"SELECT product WHERE brand LIKE 5",            // LIKE with number
		"SELECT product WHERE price = 'abc'",           // numeric attribute, non-numeric text
	}
	for _, input := range cases {
		if _, err := ParseAndPlan(input, ont); err == nil {
			t.Errorf("ParseAndPlan(%q) succeeded", input)
		}
	}
}

func TestPlanNumericStringEquality(t *testing.T) {
	ont := ontology.Paper()
	// '100' is numeric text, allowed against a numeric attribute.
	if _, err := ParseAndPlan("SELECT watch WHERE water_resistance = '100'", ont); err != nil {
		t.Fatalf("numeric string equality rejected: %v", err)
	}
}

// Property: parse ∘ print is a fixed point for generated condition lists.
func TestParsePrintFixedPointProperty(t *testing.T) {
	ops := []Op{OpEq, OpNe, OpLt, OpGt, OpLe, OpGe, OpLike}
	f := func(n uint8, vals []uint16) bool {
		q := Query{Class: "product"}
		for i, v := range vals {
			if i > 6 {
				break
			}
			q.Conditions = append(q.Conditions, Condition{
				Attribute: "attr" + string(rune('a'+i)),
				Op:        ops[int(n)%len(ops)],
				Value:     Literal{Kind: sqllang.LitNumber, Text: itoa(int(v))},
			})
		}
		printed := q.String()
		q2, err := Parse(printed)
		return err == nil && q2.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}
