// Package mapping implements the S2S Mapping Module (paper §2.3): the
// formal link between remote data and the local ontology. A mapping entry
// relates an ontology attribute to an extraction rule and a registered data
// source, exactly as the paper's examples record it:
//
//	thing.product.brand      = watch.webl, wpage_81
//	thing.product.watch.case = SELECT aatribute FROM atable WHERE ..., DB_ID_45
//
// Registration follows the three steps of Figure 3 — attribute naming,
// extraction rule definition, attribute mapping — and the repository
// validates each step eagerly: the attribute must exist in the ontology,
// the source must be registered, the rule language must suit the source
// kind, and the rule itself must compile. Mappings are created manually
// (paper: "the mapping procedures are carried out manually... offers the
// highest degree of data extraction accuracy").
package mapping

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"

	"repro/internal/datasource"
	"repro/internal/ontology"
	"repro/internal/s2sql"
	"repro/internal/selector"
	"repro/internal/sqllang"
	"repro/internal/webl"
	"repro/internal/xmlpath"
)

// Language identifies the extraction rule language of an entry.
type Language int

// Rule languages, one per source kind (paper §2.3.1 step 2).
const (
	LangSQL Language = iota + 1
	LangXPath
	LangWebL
	LangRegex
	// LangSelector is a CSS-selector rule, the alternative wrapper language
	// for web sources (internal/selector).
	LangSelector
)

func (l Language) String() string {
	switch l {
	case LangSQL:
		return "sql"
	case LangXPath:
		return "xpath"
	case LangWebL:
		return "webl"
	case LangRegex:
		return "regex"
	case LangSelector:
		return "selector"
	default:
		return fmt.Sprintf("Language(%d)", int(l))
	}
}

// ParseLanguage resolves a language name.
func ParseLanguage(s string) (Language, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sql":
		return LangSQL, nil
	case "xpath":
		return LangXPath, nil
	case "webl":
		return LangWebL, nil
	case "regex", "regexp":
		return LangRegex, nil
	case "selector", "css":
		return LangSelector, nil
	default:
		return 0, fmt.Errorf("mapping: unknown rule language %q", s)
	}
}

// languagesFor returns the rule languages a source kind accepts; the first
// is the default when an entry leaves Language unset.
func languagesFor(kind datasource.Kind) ([]Language, error) {
	switch kind {
	case datasource.KindDatabase:
		return []Language{LangSQL}, nil
	case datasource.KindXML:
		return []Language{LangXPath}, nil
	case datasource.KindWeb:
		return []Language{LangWebL, LangSelector}, nil
	case datasource.KindText:
		return []Language{LangRegex}, nil
	default:
		return nil, fmt.Errorf("mapping: no rule language for source kind %d", int(kind))
	}
}

// Scenario distinguishes the two data extraction scenarios of §2.3: a
// source may hold one data record (a page describing a watch) or n data
// records (a database of watches).
type Scenario int

// Scenarios.
const (
	// SingleRecord sources yield at most one value per attribute.
	SingleRecord Scenario = iota + 1
	// MultiRecord sources yield a value per record; values of different
	// attributes from the same source correlate by position.
	MultiRecord
)

func (s Scenario) String() string {
	switch s {
	case SingleRecord:
		return "single-record"
	case MultiRecord:
		return "multi-record"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Rule is an extraction rule: a code fragment in the language of the
// source's extractor.
type Rule struct {
	// Language of the rule code.
	Language Language
	// Code is the rule text: a SQL SELECT, an XPath expression, a WebL
	// program, or a regular expression.
	Code string
	// Column names the result column carrying the attribute value for SQL
	// rules; empty selects the first projected column. For WebL rules it
	// names the program variable to read; empty falls back to the attribute
	// name and then "result".
	Column string
	// Transform is an optional WebL expression applied to every extracted
	// value before it enters the instance generator; the raw value is bound
	// to the variable v. This is where per-source unit and vocabulary
	// normalization lives (paper §1: sources "use different meanings,
	// nomenclatures, vocabulary or units for concepts") — e.g.
	// `ToString(ToNumber(v) / 100)` turns cents into the ontology's euros.
	Transform string
	// Fallback, when set, is the original rule code to re-run when Code
	// fails at the source. The query planner (internal/planner) sets it on
	// pushed-down SQL rewrites: if the rewritten WHERE cannot evaluate on
	// the partner's schema (e.g. LIKE against a non-text column), the
	// extractor degrades to the unpushed rule and the instance-layer
	// filter does the work instead. Never set on operator-registered
	// entries.
	Fallback string
}

// TransformProgram compiles the rule's transform expression into a WebL
// program that reads v and leaves the transformed value in "result".
func (r Rule) TransformProgram() (*webl.Program, error) {
	if strings.TrimSpace(r.Transform) == "" {
		return nil, nil
	}
	return webl.Compile("return (" + r.Transform + ")")
}

// Entry is one attribute mapping: the (attribute ID, rule, source ID)
// triple of §2.3.1 step 3.
type Entry struct {
	// AttributeID is the ontology attribute's dotted unique ID.
	AttributeID string
	// SourceID names a definition in the data source registry.
	SourceID string
	// Rule is the extraction rule run against the source.
	Rule Rule
	// Scenario declares the record multiplicity of this source.
	Scenario Scenario
}

// Repository is the attribute repository: it stores validated mapping
// entries and serves extraction schemas. Safe for concurrent use.
type Repository struct {
	ont     *ontology.Ontology
	sources *datasource.Registry

	mu      sync.RWMutex
	entries map[string][]Entry // lower-cased attribute ID → entries
	keys    map[string]string  // lower-cased class name → key attribute ID

	// schemaMu guards the schema cache separately from mu so a cache
	// store never upgrades a read lock. Source definitions are immutable
	// once registered, so cached plans only go stale when entries change;
	// Register and SetClassKey flush conservatively.
	schemaMu    sync.RWMutex
	schemaCache map[string]schemaCacheEntry // raw joined attribute IDs → schema
}

// schemaCacheBound caps the schema cache; at capacity it flushes
// wholesale (distinct attribute-ID sets per deployment are few).
const schemaCacheBound = 256

type schemaCacheEntry struct {
	plans   []SourcePlan
	missing []string
}

// NewRepository creates an attribute repository bound to an ontology and a
// source registry.
func NewRepository(ont *ontology.Ontology, sources *datasource.Registry) *Repository {
	return &Repository{
		ont:         ont,
		sources:     sources,
		entries:     make(map[string][]Entry),
		keys:        make(map[string]string),
		schemaCache: make(map[string]schemaCacheEntry),
	}
}

// Ontology returns the bound ontology.
func (r *Repository) Ontology() *ontology.Ontology { return r.ont }

// Sources returns the bound source registry.
func (r *Repository) Sources() *datasource.Registry { return r.sources }

// Register validates and stores a mapping entry. An attribute may map to
// several sources; each (attribute, source) pair is registered once.
func (r *Repository) Register(e Entry) error {
	attr, ok := r.ont.Attribute(e.AttributeID)
	if !ok {
		return fmt.Errorf("mapping: attribute %q is not defined in ontology %q", e.AttributeID, r.ont.Name)
	}
	def, err := r.sources.Lookup(e.SourceID)
	if err != nil {
		return err
	}
	allowed, err := languagesFor(def.Kind)
	if err != nil {
		return err
	}
	if e.Rule.Language == 0 {
		e.Rule.Language = allowed[0]
	}
	ok = false
	for _, lang := range allowed {
		if e.Rule.Language == lang {
			ok = true
			break
		}
	}
	if !ok {
		names := make([]string, len(allowed))
		for i, lang := range allowed {
			names[i] = lang.String()
		}
		return fmt.Errorf("mapping: attribute %q: %s source %q accepts %s rules, got %s",
			e.AttributeID, def.Kind, e.SourceID, strings.Join(names, "/"), e.Rule.Language)
	}
	if err := compileRule(e.Rule); err != nil {
		return fmt.Errorf("mapping: attribute %q: %w", e.AttributeID, err)
	}
	if _, err := e.Rule.TransformProgram(); err != nil {
		return fmt.Errorf("mapping: attribute %q: transform: %w", e.AttributeID, err)
	}
	if e.Scenario == 0 {
		e.Scenario = MultiRecord
	}

	key := strings.ToLower(attr.ID())
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.entries[key] {
		if existing.SourceID == e.SourceID {
			return fmt.Errorf("mapping: attribute %q already mapped to source %q", e.AttributeID, e.SourceID)
		}
	}
	e.AttributeID = attr.ID() // canonical casing
	r.entries[key] = append(r.entries[key], e)
	r.invalidateSchemaCache()
	return nil
}

// invalidateSchemaCache flushes cached extraction schemas. Safe to call
// while holding mu: it only takes schemaMu.
func (r *Repository) invalidateSchemaCache() {
	r.schemaMu.Lock()
	r.schemaCache = make(map[string]schemaCacheEntry)
	r.schemaMu.Unlock()
}

// MustRegister is Register but panics on error; for static fixtures.
func (r *Repository) MustRegister(e Entry) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// compileRule checks the rule parses in its language, so mapping mistakes
// surface at registration time, not at query time.
func compileRule(rule Rule) error {
	switch rule.Language {
	case LangSQL:
		stmt, err := sqllang.Parse(rule.Code)
		if err != nil {
			return err
		}
		if _, ok := stmt.(*sqllang.Select); !ok {
			return fmt.Errorf("sql extraction rule must be a SELECT statement")
		}
		return nil
	case LangXPath:
		_, err := xmlpath.Compile(rule.Code)
		return err
	case LangWebL:
		_, err := webl.Compile(rule.Code)
		return err
	case LangRegex:
		_, err := regexp.Compile(rule.Code)
		return err
	case LangSelector:
		_, err := selector.Compile(rule.Code)
		return err
	default:
		return fmt.Errorf("unknown rule language %d", int(rule.Language))
	}
}

// Entries returns the mapping entries for one attribute ID, in source order.
func (r *Repository) Entries(attributeID string) []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	got := r.entries[strings.ToLower(attributeID)]
	out := make([]Entry, len(got))
	copy(out, got)
	sort.Slice(out, func(i, j int) bool { return out[i].SourceID < out[j].SourceID })
	return out
}

// AllEntries returns every mapping entry ordered by attribute ID then
// source ID.
func (r *Repository) AllEntries() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Entry
	for _, es := range r.entries {
		out = append(out, es...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AttributeID != out[j].AttributeID {
			return out[i].AttributeID < out[j].AttributeID
		}
		return out[i].SourceID < out[j].SourceID
	})
	return out
}

// MappedAttributeIDs returns the IDs of all attributes with at least one
// mapping, sorted.
func (r *Repository) MappedAttributeIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for _, es := range r.entries {
		if len(es) > 0 {
			out = append(out, es[0].AttributeID)
		}
	}
	sort.Strings(out)
	return out
}

// SetClassKey declares the attribute whose values identify records of a
// class across sources; instances sharing a key value merge during instance
// generation.
func (r *Repository) SetClassKey(class, attributeID string) error {
	c, ok := r.ont.Class(class)
	if !ok {
		return fmt.Errorf("mapping: class %q is not defined", class)
	}
	attr, ok := r.ont.Attribute(attributeID)
	if !ok {
		return fmt.Errorf("mapping: key attribute %q is not defined", attributeID)
	}
	if !c.IsA(attr.Class) && !attr.Class.IsA(c) {
		return fmt.Errorf("mapping: key attribute %q does not belong to class %q or its hierarchy", attributeID, class)
	}
	r.mu.Lock()
	r.keys[strings.ToLower(c.Name)] = attr.ID()
	r.mu.Unlock()
	r.invalidateSchemaCache()
	return nil
}

// ClassKey returns the key attribute ID declared for a class, or "".
func (r *Repository) ClassKey(class string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.keys[strings.ToLower(class)]
}

// ClassKeys returns a copy of every declared class key, keyed by class name.
func (r *Repository) ClassKeys() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]string, len(r.keys))
	for class, attr := range r.keys {
		out[class] = attr
	}
	return out
}

// ImpactReport lists the mapping entries affected by an ontology change.
type ImpactReport struct {
	// Broken entries reference attributes the new ontology no longer
	// defines (removed or moved — moved classes change attribute IDs).
	Broken []Entry
	// Retyped entries reference attributes whose datatype changed; their
	// rules still run but extracted values may no longer convert.
	Retyped []Entry
	// Unaffected counts surviving entries.
	Unaffected int
}

// ImpactOf reports which registered mappings an ontology evolution breaks.
// It does not modify the repository: migration is the operator's manual
// step, exactly as initial mapping is in the paper.
func (r *Repository) ImpactOf(next *ontology.Ontology) *ImpactReport {
	rep := &ImpactReport{}
	for _, e := range r.AllEntries() {
		na, ok := next.Attribute(e.AttributeID)
		if !ok {
			rep.Broken = append(rep.Broken, e)
			continue
		}
		oa, _ := r.ont.Attribute(e.AttributeID)
		if oa != nil && oa.Datatype != na.Datatype {
			rep.Retyped = append(rep.Retyped, e)
			continue
		}
		rep.Unaffected++
	}
	return rep
}

// SourcePlan is the per-source slice of an extraction schema: one data
// source and the mapping entries to evaluate against it.
type SourcePlan struct {
	Source  datasource.Definition
	Entries []Entry
	// Filters are record-scoped pushdown filters the query planner
	// (internal/planner) attached for one specific query. Repository
	// schemas never carry them; they appear only on the rewritten copies
	// the extractor manager caches per query shape.
	Filters []RecordFilter
	// SemiJoins lists the cross-source semi-join narrowing opportunities
	// the query planner found for this plan (planner v3): record-scope
	// groups whose records can reach the answer only by class-key merge
	// with instances from other sources. The extractor runs such plans in
	// a second wave, narrowed by the key values the first wave observed.
	// Like Filters, they appear only on planner-rewritten copies.
	SemiJoins []SemiJoin
	// Ephemeral marks a per-run plan copy whose entries carry run-specific
	// rewritten rules (semi-join-narrowed SQL). Ephemeral plans bypass the
	// extractor's rule-result cache and its address-keyed memo: their
	// entry addresses are fresh every run and their results depend on the
	// run's seed values, so caching them could serve a narrowed result for
	// the unnarrowed rule (or leak memo entries).
	Ephemeral bool
}

// SemiJoin describes one semi-join-narrowable record-scope group: the
// group misses an attribute the query constrains (so its own instances
// can never satisfy the WHERE clause), and the only route its records
// have into the answer is a class-key merge that donates values to
// instances keyed by KeyAttribute. Records whose key value no other
// source produced can therefore be dropped — or never fetched — without
// changing the answer; the instance layer re-applies every condition
// regardless (sound, not load-bearing).
type SemiJoin struct {
	// Entries indexes the group's members in the owning SourcePlan.Entries.
	Entries []int
	// KeyAttribute is the declared class-key attribute the group's
	// instances merge on.
	KeyAttribute string
	// KeyEntry is the group member (an index into SourcePlan.Entries)
	// whose rule extracts KeyAttribute.
	KeyEntry int
	// SQL reports that every member rule is a plain single-scan SELECT
	// over one shared row set, so the narrowing can be pushed natively as
	// a `KeyColumn IN (...)` predicate; otherwise the extractor filters
	// fetched records positionally by key membership instead.
	SQL bool
	// KeyColumn is the key member's projected column (SQL groups only).
	KeyColumn string
	// EligibleConds indexes the query plan's conditions the group
	// provably cannot satisfy (no member maps the attribute, and every
	// earlier condition is error-free). Narrowing multiple groups in one
	// run is sound only when they share such a condition — otherwise two
	// narrowed groups could merge with each other into an instance that
	// satisfies the query — so the extractor intersects these.
	EligibleConds []int
}

// Narrowable reports whether sp carries at least one semi-join
// opportunity (the extractor's wave split keys on it).
func (sp SourcePlan) Narrowable() bool { return len(sp.SemiJoins) > 0 }

// RecordFilter asks the extractor to drop, before fragments enter the
// result set, the record positions of one record-scope group that
// provably fail the query's WHERE conditions. Entries indexes into the
// owning SourcePlan.Entries; all indexed entries share one source record
// scope (same table row / same XML record node), so position i of each
// entry's values describes the same record — exactly the tuple the
// instance generator would assemble. Records whose evaluation errors are
// kept, so the instance layer reproduces the error verbatim.
type RecordFilter struct {
	Entries    []int
	Conditions []s2sql.PlannedCondition
	// KeyIn, when non-nil, additionally drops every record position whose
	// KeyEntry value is absent from the set — the runtime half of a
	// semi-join narrowing for groups whose rules cannot be rewritten
	// natively. Key membership is an exact string match on the extracted
	// value (the same comparison the instance layer's class-key merge
	// performs), so it never errors; positions are dropped all-or-nothing
	// across the group like condition filtering. A position with no key
	// value — the KeyEntry rule failed or its fragment is short — is
	// dropped too: such records merge nowhere, and their standalone
	// instances still miss the group's unsatisfied condition.
	KeyEntry int
	KeyIn    map[string]bool
}

// Schema assembles the extraction schema (paper §2.4.1 "Obtain Extraction
// Schema" and §2.4.2 "Obtain Data Source Definition") for a set of
// attribute IDs: every mapping entry of every requested attribute, grouped
// by data source, with each source's connection definition attached.
// Attributes without any mapping are reported in missing rather than
// failing the whole schema; the caller decides whether that is an error.
func (r *Repository) Schema(attributeIDs []string) (plans []SourcePlan, missing []string, err error) {
	key := strings.Join(attributeIDs, "\x00")
	r.schemaMu.RLock()
	cached, ok := r.schemaCache[key]
	r.schemaMu.RUnlock()
	if ok {
		// Hand out a fresh top-level slice so callers appending to the
		// result never alias the cache; plans and entries themselves are
		// read-only by contract.
		return append([]SourcePlan(nil), cached.plans...), append([]string(nil), cached.missing...), nil
	}
	plans, missing, err = r.buildSchema(attributeIDs)
	if err != nil {
		return nil, nil, err
	}
	r.schemaMu.Lock()
	if len(r.schemaCache) >= schemaCacheBound {
		r.schemaCache = make(map[string]schemaCacheEntry, schemaCacheBound)
	}
	r.schemaCache[key] = schemaCacheEntry{plans: plans, missing: missing}
	r.schemaMu.Unlock()
	return append([]SourcePlan(nil), plans...), append([]string(nil), missing...), nil
}

// buildSchema assembles a schema from the live entry tables.
func (r *Repository) buildSchema(attributeIDs []string) (plans []SourcePlan, missing []string, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()

	bySource := make(map[string][]Entry)
	seen := make(map[string]bool)
	for _, id := range attributeIDs {
		key := strings.ToLower(id)
		if seen[key] {
			continue
		}
		seen[key] = true
		entries := r.entries[key]
		if len(entries) == 0 {
			missing = append(missing, id)
			continue
		}
		for _, e := range entries {
			bySource[e.SourceID] = append(bySource[e.SourceID], e)
		}
	}

	ids := make([]string, 0, len(bySource))
	for id := range bySource {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		def, err := r.sources.Lookup(id)
		if err != nil {
			return nil, nil, err
		}
		entries := bySource[id]
		sort.Slice(entries, func(i, j int) bool { return entries[i].AttributeID < entries[j].AttributeID })
		plans = append(plans, SourcePlan{Source: def, Entries: entries})
	}
	sort.Strings(missing)
	return plans, missing, nil
}
