package mapping

import (
	"strings"
	"testing"

	"repro/internal/datasource"
	"repro/internal/ontology"
)

func fixtures(t *testing.T) (*ontology.Ontology, *datasource.Registry) {
	t.Helper()
	ont := ontology.Paper()
	reg := datasource.NewRegistry()
	defs := []datasource.Definition{
		{ID: "wpage_81", Kind: datasource.KindWeb, URL: "http://www.eshop.com/products/watches.html"},
		{ID: "DB_ID_45", Kind: datasource.KindDatabase, DSN: "inventory"},
		{ID: "xml_7", Kind: datasource.KindXML, Path: "catalog.xml"},
		{ID: "txt_2", Kind: datasource.KindText, Path: "prices.txt"},
	}
	for _, d := range defs {
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	return ont, reg
}

const weblRule = `
var P = GetURL("http://www.eshop.com/products/watches.html")
var St = Str_Search(Text(P), "<p><b>" + "[0-9a-zA-Z']+")
var spliter = Str_Split(St[0][0], "<>")
var brand = Select(spliter[2], 0, 6)
`

// TestPaperMappingEntries registers the exact mappings from §2.3.1 step 3.
func TestPaperMappingEntries(t *testing.T) {
	ont, reg := fixtures(t)
	repo := NewRepository(ont, reg)

	// thing.product.brand = watch.webl, wpage_81
	if err := repo.Register(Entry{
		AttributeID: "thing.product.brand",
		SourceID:    "wpage_81",
		Rule:        Rule{Language: LangWebL, Code: weblRule},
		Scenario:    SingleRecord,
	}); err != nil {
		t.Fatalf("webl mapping: %v", err)
	}

	// thing.product.watch.case = SELECT ..., DB_ID_45
	if err := repo.Register(Entry{
		AttributeID: "thing.product.watch.case",
		SourceID:    "DB_ID_45",
		Rule:        Rule{Language: LangSQL, Code: "SELECT watch_case FROM watches WHERE brand = 'Seiko'"},
	}); err != nil {
		t.Fatalf("sql mapping: %v", err)
	}

	entries := repo.Entries("thing.product.brand")
	if len(entries) != 1 || entries[0].SourceID != "wpage_81" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Scenario != SingleRecord {
		t.Errorf("scenario = %v", entries[0].Scenario)
	}
	// Default scenario is multi-record.
	if got := repo.Entries("thing.product.watch.case"); got[0].Scenario != MultiRecord {
		t.Errorf("default scenario = %v", got[0].Scenario)
	}
}

func TestRegisterDefaultsLanguageFromSourceKind(t *testing.T) {
	ont, reg := fixtures(t)
	repo := NewRepository(ont, reg)
	if err := repo.Register(Entry{
		AttributeID: "thing.product.model",
		SourceID:    "xml_7",
		Rule:        Rule{Code: "/catalog/watch/model"},
	}); err != nil {
		t.Fatal(err)
	}
	if got := repo.Entries("thing.product.model")[0].Rule.Language; got != LangXPath {
		t.Errorf("defaulted language = %v", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	ont, reg := fixtures(t)
	repo := NewRepository(ont, reg)
	cases := []struct {
		name  string
		entry Entry
	}{
		{"unknown attribute", Entry{AttributeID: "thing.product.serial", SourceID: "xml_7", Rule: Rule{Code: "/a"}}},
		{"unknown source", Entry{AttributeID: "thing.product.brand", SourceID: "nosuch", Rule: Rule{Code: "/a"}}},
		{"language mismatch", Entry{AttributeID: "thing.product.brand", SourceID: "DB_ID_45", Rule: Rule{Language: LangXPath, Code: "/a"}}},
		{"bad sql", Entry{AttributeID: "thing.product.brand", SourceID: "DB_ID_45", Rule: Rule{Language: LangSQL, Code: "SELEK *"}}},
		{"sql non-select", Entry{AttributeID: "thing.product.brand", SourceID: "DB_ID_45", Rule: Rule{Language: LangSQL, Code: "DELETE FROM t"}}},
		{"bad xpath", Entry{AttributeID: "thing.product.brand", SourceID: "xml_7", Rule: Rule{Language: LangXPath, Code: "//["}}},
		{"bad webl", Entry{AttributeID: "thing.product.brand", SourceID: "wpage_81", Rule: Rule{Language: LangWebL, Code: "var = broken"}}},
		{"bad regex", Entry{AttributeID: "thing.product.brand", SourceID: "txt_2", Rule: Rule{Language: LangRegex, Code: "["}}},
	}
	for _, c := range cases {
		if err := repo.Register(c.entry); err == nil {
			t.Errorf("%s: registered", c.name)
		}
	}
}

func TestRegisterDuplicatePair(t *testing.T) {
	ont, reg := fixtures(t)
	repo := NewRepository(ont, reg)
	e := Entry{AttributeID: "thing.product.brand", SourceID: "xml_7", Rule: Rule{Code: "//brand"}}
	if err := repo.Register(e); err != nil {
		t.Fatal(err)
	}
	if err := repo.Register(e); err == nil {
		t.Error("duplicate (attribute, source) accepted")
	}
	// A second source for the same attribute is allowed (multi-source
	// integration is the point of the middleware).
	e2 := Entry{AttributeID: "thing.product.brand", SourceID: "txt_2", Rule: Rule{Code: `brand=([A-Za-z]+)`}}
	if err := repo.Register(e2); err != nil {
		t.Errorf("second source rejected: %v", err)
	}
	if got := len(repo.Entries("thing.product.brand")); got != 2 {
		t.Errorf("entries = %d", got)
	}
}

func TestSchemaGroupsBySource(t *testing.T) {
	ont, reg := fixtures(t)
	repo := NewRepository(ont, reg)
	repo.MustRegister(Entry{AttributeID: "thing.product.brand", SourceID: "xml_7", Rule: Rule{Code: "//brand"}})
	repo.MustRegister(Entry{AttributeID: "thing.product.model", SourceID: "xml_7", Rule: Rule{Code: "//model"}})
	repo.MustRegister(Entry{AttributeID: "thing.product.watch.case", SourceID: "DB_ID_45", Rule: Rule{Code: "SELECT watch_case FROM watches"}})

	plans, missing, err := repo.Schema([]string{
		"thing.product.brand", "thing.product.model", "thing.product.watch.case", "thing.provider.name",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != "thing.provider.name" {
		t.Errorf("missing = %v", missing)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %+v", plans)
	}
	// Plans are source-ID ordered: DB_ID_45 then xml_7.
	if plans[0].Source.ID != "DB_ID_45" || len(plans[0].Entries) != 1 {
		t.Errorf("plan 0 = %+v", plans[0])
	}
	if plans[1].Source.ID != "xml_7" || len(plans[1].Entries) != 2 {
		t.Errorf("plan 1 = %+v", plans[1])
	}
	// Connection info rides along (§2.4.2).
	if plans[1].Source.Path != "catalog.xml" {
		t.Errorf("source definition not attached: %+v", plans[1].Source)
	}
	// Duplicate attribute IDs in the request are collapsed.
	plans2, _, err := repo.Schema([]string{"thing.product.brand", "THING.PRODUCT.BRAND"})
	if err != nil || len(plans2) != 1 || len(plans2[0].Entries) != 1 {
		t.Errorf("deduped schema = %+v, %v", plans2, err)
	}
}

func TestClassKeys(t *testing.T) {
	ont, reg := fixtures(t)
	repo := NewRepository(ont, reg)
	if err := repo.SetClassKey("watch", "thing.product.model"); err != nil {
		t.Fatalf("key on inherited attribute: %v", err)
	}
	if got := repo.ClassKey("watch"); got != "thing.product.model" {
		t.Errorf("ClassKey = %q", got)
	}
	if got := repo.ClassKey("provider"); got != "" {
		t.Errorf("unset ClassKey = %q", got)
	}
	if err := repo.SetClassKey("nosuch", "thing.product.model"); err == nil {
		t.Error("unknown class accepted")
	}
	if err := repo.SetClassKey("watch", "thing.nosuch"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := repo.SetClassKey("provider", "thing.product.brand"); err == nil {
		t.Error("key attribute outside class hierarchy accepted")
	}
}

func TestAllEntriesAndMappedIDs(t *testing.T) {
	ont, reg := fixtures(t)
	repo := NewRepository(ont, reg)
	repo.MustRegister(Entry{AttributeID: "thing.provider.name", SourceID: "xml_7", Rule: Rule{Code: "//provider/name"}})
	repo.MustRegister(Entry{AttributeID: "thing.product.brand", SourceID: "xml_7", Rule: Rule{Code: "//brand"}})
	all := repo.AllEntries()
	if len(all) != 2 || all[0].AttributeID != "thing.product.brand" {
		t.Errorf("AllEntries = %+v", all)
	}
	ids := repo.MappedAttributeIDs()
	if len(ids) != 2 || ids[1] != "thing.provider.name" {
		t.Errorf("MappedAttributeIDs = %v", ids)
	}
}

func TestImpactOfOntologyEvolution(t *testing.T) {
	ont, reg := fixtures(t)
	repo := NewRepository(ont, reg)
	repo.MustRegister(Entry{AttributeID: "thing.product.brand", SourceID: "xml_7", Rule: Rule{Code: "//brand"}})
	repo.MustRegister(Entry{AttributeID: "thing.product.watch.case", SourceID: "xml_7", Rule: Rule{Code: "//case"}})
	repo.MustRegister(Entry{AttributeID: "thing.product.price", SourceID: "xml_7", Rule: Rule{Code: "//price"}})

	// New ontology version: watch moves under thing (its attribute IDs
	// change) and price becomes an integer.
	next := ontology.MustNew(ontology.PaperBase, "watch-catalog", "thing")
	if _, err := next.AddClass("product", "thing"); err != nil {
		t.Fatal(err)
	}
	if _, err := next.AddClass("watch", "thing"); err != nil {
		t.Fatal(err)
	}
	if _, err := next.AddAttribute("product", "brand", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := next.AddAttribute("watch", "case", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := next.AddAttribute("product", "price", "http://www.w3.org/2001/XMLSchema#integer"); err != nil {
		t.Fatal(err)
	}

	rep := repo.ImpactOf(next)
	if len(rep.Broken) != 1 || rep.Broken[0].AttributeID != "thing.product.watch.case" {
		t.Errorf("broken = %+v", rep.Broken)
	}
	if len(rep.Retyped) != 1 || rep.Retyped[0].AttributeID != "thing.product.price" {
		t.Errorf("retyped = %+v", rep.Retyped)
	}
	if rep.Unaffected != 1 {
		t.Errorf("unaffected = %d", rep.Unaffected)
	}
}

func TestParseLanguage(t *testing.T) {
	for s, want := range map[string]Language{"sql": LangSQL, "XPath": LangXPath, "WEBL": LangWebL, "regexp": LangRegex} {
		got, err := ParseLanguage(s)
		if err != nil || got != want {
			t.Errorf("ParseLanguage(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLanguage("prolog"); err == nil {
		t.Error("unknown language parsed")
	}
	for _, l := range []Language{LangSQL, LangXPath, LangWebL, LangRegex} {
		if strings.Contains(l.String(), "Language(") {
			t.Errorf("missing name for %d", int(l))
		}
	}
}

func TestScenarioString(t *testing.T) {
	if SingleRecord.String() != "single-record" || MultiRecord.String() != "multi-record" {
		t.Error("scenario names")
	}
}

// TestSchemaCacheCoherence pins the schema cache's contract: repeated
// Schema calls return equal results without sharing mutable state, and
// registering a new entry immediately shows up in the next call.
func TestSchemaCacheCoherence(t *testing.T) {
	ont, reg := fixtures(t)
	repo := NewRepository(ont, reg)
	repo.MustRegister(Entry{AttributeID: "thing.product.brand", SourceID: "xml_7", Rule: Rule{Code: "//brand"}})

	attrs := []string{"thing.product.brand", "thing.provider.name"}
	plans1, missing1, err := repo.Schema(attrs)
	if err != nil {
		t.Fatal(err)
	}
	// Callers may mutate the returned top-level slices freely.
	plans1 = append(plans1[:0], SourcePlan{})
	missing1 = append(missing1[:0], "clobbered")
	_, _ = plans1, missing1

	plans2, missing2, err := repo.Schema(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans2) != 1 || plans2[0].Source.ID != "xml_7" {
		t.Fatalf("cached schema corrupted by caller mutation: %+v", plans2)
	}
	if len(missing2) != 1 || missing2[0] != "thing.provider.name" {
		t.Fatalf("cached missing corrupted by caller mutation: %v", missing2)
	}

	// Registering a mapping for the missing attribute must invalidate.
	repo.MustRegister(Entry{AttributeID: "thing.provider.name", SourceID: "txt_2", Rule: Rule{Code: `name=([A-Za-z]+)`}})
	plans3, missing3, err := repo.Schema(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing3) != 0 {
		t.Errorf("missing after registration = %v (stale schema cache)", missing3)
	}
	if len(plans3) != 2 {
		t.Errorf("plans after registration = %+v", plans3)
	}

	// The `missing` list preserves the caller's casing, so differently
	// cased requests must not share one cache entry.
	_, missingUpper, err := repo.Schema([]string{"THING.PRODUCT.NOSUCH"})
	if err != nil {
		t.Fatal(err)
	}
	_, missingLower, err := repo.Schema([]string{"thing.product.nosuch"})
	if err != nil {
		t.Fatal(err)
	}
	if len(missingUpper) != 1 || missingUpper[0] != "THING.PRODUCT.NOSUCH" {
		t.Errorf("upper missing = %v", missingUpper)
	}
	if len(missingLower) != 1 || missingLower[0] != "thing.product.nosuch" {
		t.Errorf("lower missing = %v", missingLower)
	}
}
