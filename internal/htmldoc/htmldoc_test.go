package htmldoc

import (
	"strings"
	"testing"
	"testing/quick"
)

// paperPage is the HTML fragment from the paper's attribute-registration
// example (§2.3.1 step 2).
const paperPage = `<p> <b>Seiko Men's Automatic Dive Watch</b> </p>`

const shopPage = `<!DOCTYPE html>
<html>
<head><title>TimeHouse &amp; Co</title>
<style>body { color: red }</style>
<script>var x = "<p>not text</p>";</script>
</head>
<body>
  <div class="product" data-id="1">
    <p> <b>Seiko Men's Automatic Dive Watch</b> </p>
    <span class="case">stainless-steel</span>
    <span class='price'>129.99</span>
    <img src="w1.jpg">
    <br/>
  </div>
  <div class="product" data-id="2">
    <p> <b>Casio F91W Digital Watch</b> </p>
    <span class="case">resin</span>
    <span class=price>15.00</span>
  </div>
</body>
</html>`

func TestTokenizeBasics(t *testing.T) {
	toks := Tokenize(paperPage)
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	// <p> text <b> text </b> text </p>
	want := []TokenKind{TokStartTag, TokText, TokStartTag, TokText, TokEndTag, TokText, TokEndTag}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %+v", toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[3].Data != "Seiko Men's Automatic Dive Watch" {
		t.Errorf("bold text = %q", toks[3].Data)
	}
}

func TestTokenizeAttributes(t *testing.T) {
	toks := Tokenize(`<a href="x.html" class='big' disabled data-n=3>link</a>`)
	if toks[0].Kind != TokStartTag || toks[0].Data != "a" {
		t.Fatalf("first token = %+v", toks[0])
	}
	attrs := toks[0].Attrs
	if attrs["href"] != "x.html" || attrs["class"] != "big" || attrs["data-n"] != "3" {
		t.Errorf("attrs = %v", attrs)
	}
	if _, ok := attrs["disabled"]; !ok {
		t.Error("bare attribute missing")
	}
}

func TestTokenizeVoidAndSelfClosing(t *testing.T) {
	toks := Tokenize(`<img src="a.png"><br/><hr>`)
	for i, tok := range toks {
		if tok.Kind != TokSelfClosing {
			t.Errorf("token %d = %+v, want self-closing", i, tok)
		}
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	toks := Tokenize(`<script>if (a < b) { x = "<p>"; }</script><p>after</p>`)
	if toks[0].Data != "script" {
		t.Fatalf("tokens = %+v", toks)
	}
	if toks[1].Kind != TokText || !strings.Contains(toks[1].Data, `a < b`) {
		t.Errorf("script body = %+v", toks[1])
	}
	if toks[2].Kind != TokEndTag || toks[2].Data != "script" {
		t.Errorf("script close = %+v", toks[2])
	}
}

func TestTokenizeCommentDoctypeEntities(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE html><!-- note --><p>a &amp; b &#233; &lt;ok&gt;</p>`)
	if toks[0].Kind != TokDoctype {
		t.Errorf("doctype = %+v", toks[0])
	}
	if toks[1].Kind != TokComment || strings.TrimSpace(toks[1].Data) != "note" {
		t.Errorf("comment = %+v", toks[1])
	}
	if toks[3].Data != "a & b é <ok>" {
		t.Errorf("entity text = %q", toks[3].Data)
	}
}

func TestTokenizeMalformed(t *testing.T) {
	// A bare '<' and an unterminated tag both degrade, never panic.
	toks := Tokenize(`1 < 2 and <b>bold`)
	var text strings.Builder
	for _, tok := range toks {
		if tok.Kind == TokText {
			text.WriteString(tok.Data)
		}
	}
	if !strings.Contains(text.String(), "1 < 2 and") {
		t.Errorf("text = %q", text.String())
	}
}

func TestParseAndFind(t *testing.T) {
	doc := Parse(shopPage)
	products := doc.FindByAttr("class", "product")
	if len(products) != 2 {
		t.Fatalf("products = %d", len(products))
	}
	if id, _ := products[1].Attr("data-id"); id != "2" {
		t.Errorf("second product id = %q", id)
	}
	bolds := doc.FindAll("b")
	if len(bolds) != 2 {
		t.Fatalf("bolds = %d", len(bolds))
	}
	if got := bolds[0].VisibleText(); got != "Seiko Men's Automatic Dive Watch" {
		t.Errorf("first bold = %q", got)
	}
	// Unquoted attribute value.
	spans := doc.FindByAttr("class", "price")
	if len(spans) != 2 {
		t.Fatalf("price spans = %d", len(spans))
	}
	if got := spans[1].VisibleText(); got != "15.00" {
		t.Errorf("second price = %q", got)
	}
}

func TestVisibleTextSkipsScriptAndStyle(t *testing.T) {
	doc := Parse(shopPage)
	text := doc.VisibleText()
	if strings.Contains(text, "not text") || strings.Contains(text, "color: red") {
		t.Errorf("script/style leaked into text: %q", text)
	}
	if !strings.Contains(text, "TimeHouse & Co") {
		t.Errorf("title missing from text: %q", text)
	}
	if !strings.Contains(text, "Seiko Men's Automatic Dive Watch") {
		t.Errorf("product name missing: %q", text)
	}
}

func TestParseMismatchedEndTags(t *testing.T) {
	doc := Parse(`<div><p>one</div><p>two`)
	// </div> closes the open div even though p was never closed.
	divs := doc.FindAll("div")
	if len(divs) != 1 {
		t.Fatalf("divs = %d", len(divs))
	}
	text := doc.VisibleText()
	if !strings.Contains(text, "one") || !strings.Contains(text, "two") {
		t.Errorf("text = %q", text)
	}
	// A stray end tag with no open element is ignored.
	doc2 := Parse(`</b>hello`)
	if got := doc2.VisibleText(); got != "hello" {
		t.Errorf("stray close text = %q", got)
	}
}

func TestParseNamelessEndTag(t *testing.T) {
	// Regression: "</>" must not close the document root (fuzz finding).
	doc := Parse(`</>after<b>x</b></>more`)
	text := doc.VisibleText()
	for _, want := range []string{"after", "x", "more"} {
		if !strings.Contains(text, want) {
			t.Errorf("text %q missing %q", text, want)
		}
	}
	// End tag matching nothing open deep in a tree is also safe.
	doc2 := Parse(`<div><p>one</span></p></div>`)
	if got := doc2.VisibleText(); got != "one" {
		t.Errorf("text = %q", got)
	}
}

// Property: tokenizing never panics and the visible text of a generated page
// contains every product name exactly once.
func TestParseGeneratedPagesProperty(t *testing.T) {
	f := func(names []uint8) bool {
		if len(names) > 30 {
			names = names[:30]
		}
		var b strings.Builder
		b.WriteString("<html><body>")
		for i, v := range names {
			b.WriteString("<div class=\"product\"><p> <b>item")
			b.WriteString(strings.Repeat("x", int(v)%5))
			b.WriteString("</b> </p><span>")
			b.WriteString(strings.Repeat("y", i%3))
			b.WriteString("</span></div>")
		}
		b.WriteString("</body></html>")
		doc := Parse(b.String())
		return len(doc.FindByAttr("class", "product")) == len(names)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
