package htmldoc

import "testing"

// FuzzParse checks the lenient HTML parser never panics on arbitrary
// markup and that VisibleText always succeeds.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<p> <b>Seiko Men's Automatic Dive Watch</b> </p>`,
		`<div class="p"><img src=x><br/>text</div>`,
		`<script>if (a<b) {}</script><p>after`,
		`</b>stray<a href='x>broken`,
		`<!DOCTYPE html><!-- c --><ul><li>1<li>2</ul>`,
		`text & <entities &amp; &#65; &bogus;`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		_ = doc.VisibleText()
		_ = doc.FindAll("b")
		_ = doc.FindByAttr("class", "p")
	})
}
