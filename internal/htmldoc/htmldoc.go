// Package htmldoc provides a lenient HTML tokenizer, a small DOM, and
// visible-text extraction. It backs the middleware's unstructured web-page
// data sources: the simulated B2B shop fronts serve HTML built and inspected
// with this package, and the WebL interpreter uses it to render page text.
//
// The parser is deliberately forgiving, as real-world product pages are
// rarely well-formed: unknown or mismatched end tags are skipped, void
// elements (br, img, ...) never open a scope, and attribute values may be
// single-quoted, double-quoted, or bare.
package htmldoc

import (
	"fmt"
	"strings"
)

// TokenKind classifies HTML tokens.
type TokenKind int

// Token kinds.
const (
	TokText TokenKind = iota + 1
	TokStartTag
	TokEndTag
	TokSelfClosing
	TokComment
	TokDoctype
)

// Token is one lexical HTML token.
type Token struct {
	Kind TokenKind
	// Data is the tag name (lower-cased) for tags, or the text content for
	// text and comments.
	Data string
	// Attrs holds tag attributes by lower-cased name.
	Attrs map[string]string
}

// voidElements never contain content and never get end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements swallow everything up to their literal end tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// Tokenize splits HTML source into tokens. It never fails: malformed markup
// degrades to text.
func Tokenize(src string) []Token {
	var toks []Token
	i := 0
	emitText := func(s string) {
		if s != "" {
			toks = append(toks, Token{Kind: TokText, Data: decodeEntities(s)})
		}
	}
	for i < len(src) {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			emitText(src[i:])
			break
		}
		emitText(src[i : i+lt])
		i += lt
		switch {
		case strings.HasPrefix(src[i:], "<!--"):
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				toks = append(toks, Token{Kind: TokComment, Data: src[i+4:]})
				i = len(src)
			} else {
				toks = append(toks, Token{Kind: TokComment, Data: src[i+4 : i+4+end]})
				i += 4 + end + 3
			}
		case strings.HasPrefix(src[i:], "<!"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				i = len(src)
			} else {
				toks = append(toks, Token{Kind: TokDoctype, Data: strings.TrimSpace(src[i+2 : i+end])})
				i += end + 1
			}
		case strings.HasPrefix(src[i:], "</"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				emitText(src[i:])
				i = len(src)
			} else {
				name := strings.ToLower(strings.TrimSpace(src[i+2 : i+end]))
				toks = append(toks, Token{Kind: TokEndTag, Data: name})
				i += end + 1
			}
		default:
			tok, consumed, ok := lexTag(src[i:])
			if !ok {
				// A bare '<' that does not open a tag is text.
				emitText("<")
				i++
				continue
			}
			i += consumed
			toks = append(toks, tok)
			if tok.Kind == TokStartTag && rawTextElements[tok.Data] {
				// Swallow raw text until the matching end tag.
				closer := "</" + tok.Data
				idx := strings.Index(strings.ToLower(src[i:]), closer)
				if idx < 0 {
					toks = append(toks, Token{Kind: TokText, Data: src[i:]})
					i = len(src)
				} else {
					if idx > 0 {
						toks = append(toks, Token{Kind: TokText, Data: src[i : i+idx]})
					}
					gt := strings.IndexByte(src[i+idx:], '>')
					toks = append(toks, Token{Kind: TokEndTag, Data: tok.Data})
					if gt < 0 {
						i = len(src)
					} else {
						i += idx + gt + 1
					}
				}
			}
		}
	}
	return toks
}

// lexTag parses "<name attr=val ...>" starting at src[0] == '<'.
func lexTag(src string) (Token, int, bool) {
	i := 1
	start := i
	for i < len(src) && isTagNameChar(src[i]) {
		i++
	}
	if i == start {
		return Token{}, 0, false
	}
	tok := Token{Kind: TokStartTag, Data: strings.ToLower(src[start:i]), Attrs: map[string]string{}}
	for {
		for i < len(src) && isHTMLSpace(src[i]) {
			i++
		}
		if i >= len(src) {
			return tok, i, true // unterminated tag: treat as closed at EOF
		}
		if src[i] == '>' {
			i++
			break
		}
		if strings.HasPrefix(src[i:], "/>") {
			tok.Kind = TokSelfClosing
			i += 2
			break
		}
		// Attribute name.
		nameStart := i
		for i < len(src) && src[i] != '=' && src[i] != '>' && !isHTMLSpace(src[i]) && src[i] != '/' {
			i++
		}
		name := strings.ToLower(src[nameStart:i])
		if name == "" {
			i++ // skip stray character
			continue
		}
		for i < len(src) && isHTMLSpace(src[i]) {
			i++
		}
		if i < len(src) && src[i] == '=' {
			i++
			for i < len(src) && isHTMLSpace(src[i]) {
				i++
			}
			var val string
			if i < len(src) && (src[i] == '"' || src[i] == '\'') {
				quote := src[i]
				i++
				end := strings.IndexByte(src[i:], quote)
				if end < 0 {
					val = src[i:]
					i = len(src)
				} else {
					val = src[i : i+end]
					i += end + 1
				}
			} else {
				valStart := i
				for i < len(src) && !isHTMLSpace(src[i]) && src[i] != '>' {
					i++
				}
				val = src[valStart:i]
			}
			tok.Attrs[name] = decodeEntities(val)
		} else {
			tok.Attrs[name] = ""
		}
	}
	if voidElements[tok.Data] && tok.Kind == TokStartTag {
		tok.Kind = TokSelfClosing
	}
	return tok, i, true
}

func isTagNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-'
}

func isHTMLSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'", "nbsp": " ",
}

func decodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 8 {
			b.WriteByte('&')
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if rep, ok := entities[name]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		if strings.HasPrefix(name, "#") {
			var r rune
			if _, err := fmt.Sscanf(name, "#%d", &r); err == nil && r > 0 {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
			if _, err := fmt.Sscanf(name, "#x%x", &r); err == nil && r > 0 {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte('&')
		i++
	}
	return b.String()
}

// Node is an element or text node in the lenient DOM.
type Node struct {
	// Tag is the element name, or "" for text nodes and the document root.
	Tag string
	// Text is the content of text nodes.
	Text string
	// Attrs holds element attributes.
	Attrs map[string]string
	// Children holds child nodes in document order.
	Children []*Node
	// Parent is nil for the root.
	Parent *Node
}

// Parse builds a DOM from HTML source. Mismatched end tags are skipped and
// unclosed elements are closed at end of input.
func Parse(src string) *Node {
	root := &Node{}
	cur := root
	for _, tok := range Tokenize(src) {
		switch tok.Kind {
		case TokText:
			if strings.TrimSpace(tok.Data) != "" {
				cur.Children = append(cur.Children, &Node{Text: tok.Data, Parent: cur})
			}
		case TokStartTag:
			n := &Node{Tag: tok.Data, Attrs: tok.Attrs, Parent: cur}
			cur.Children = append(cur.Children, n)
			cur = n
		case TokSelfClosing:
			cur.Children = append(cur.Children, &Node{Tag: tok.Data, Attrs: tok.Attrs, Parent: cur})
		case TokEndTag:
			if tok.Data == "" {
				// A nameless end tag ("</>") closes nothing; treating it as
				// matching the root's empty tag would escape the document.
				continue
			}
			// Close the nearest open element with this name, if any.
			for n := cur; n != nil && n.Parent != nil; n = n.Parent {
				if n.Tag == tok.Data {
					cur = n.Parent
					break
				}
			}
		}
	}
	return root
}

// VisibleText renders the text a browser would display: script and style
// content is dropped and whitespace collapses to single spaces.
func (n *Node) VisibleText() string {
	var b strings.Builder
	var walk func(*Node)
	walk = func(cur *Node) {
		if rawTextElements[cur.Tag] {
			return
		}
		if cur.Text != "" {
			b.WriteString(cur.Text)
			b.WriteByte(' ')
		}
		for _, c := range cur.Children {
			walk(c)
		}
	}
	walk(n)
	return strings.Join(strings.Fields(b.String()), " ")
}

// FindAll returns every descendant element with the given tag name, in
// document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(cur *Node) {
		for _, c := range cur.Children {
			if c.Tag == tag {
				out = append(out, c)
			}
			walk(c)
		}
	}
	walk(n)
	return out
}

// FindByAttr returns every descendant element carrying attr=value.
func (n *Node) FindByAttr(attr, value string) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(cur *Node) {
		for _, c := range cur.Children {
			if v, ok := c.Attrs[attr]; ok && v == value {
				out = append(out, c)
			}
			walk(c)
		}
	}
	walk(n)
	return out
}

// Attr returns the attribute value and presence.
func (n *Node) Attr(name string) (string, bool) {
	v, ok := n.Attrs[name]
	return v, ok
}
