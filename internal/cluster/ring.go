package cluster

// ring.go is the consistent-hash partitioner: every member contributes
// VirtualNodes points on a 64-bit ring, and a source belongs to the
// first ReplicationFactor distinct members clockwise from the source's
// own hash. Adding or removing one member moves only the sources whose
// arcs that member's points covered — the property that keeps ownership
// stable while the fleet changes.

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringPoint is one virtual node: a member's position on the hash ring.
type ringPoint struct {
	hash uint64
	node string
}

// ring partitions string keys across member nodes.
type ring struct {
	points []ringPoint
}

// hash64 is the ring's hash function: FNV-1a (stdlib) through a
// 64-bit avalanche finalizer. Raw FNV-1a of "node#0".."node#63" style
// strings differs mostly in the low bits, which leaves each node's
// points clustered in one narrow arc of the ring; the finalizer mixes
// those differences into the high bits so the points interleave.
func hash64(s string) uint64 {
	h := fnv.New64a()
	//lint:ignore errcheck hash.Hash documents Write as never failing
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// buildRing places vnodes points per node. Node order does not matter:
// point positions depend only on the node name, so every coordinator
// builds the identical ring from the same member set.
func buildRing(nodes []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for _, node := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(node + "#" + strconv.Itoa(i)), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// owners returns the first n distinct nodes clockwise from key's hash:
// the primary owner first, then the replicas in ring order. Fewer nodes
// than n returns them all.
func (r *ring) owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hash64(key)
	})
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}
