// Package cluster turns a set of S2S middleware servers into one
// fault-tolerant fleet. One node acts as the coordinator: it tracks
// member liveness via heartbeats (alive → suspect → dead as deadlines
// pass), replicates the source/mapping catalog to every member behind
// a version counter, and answers queries on /cluster/query by
// partitioning the plan's sources across the members with a consistent
// hash ring and scattering restricted extraction to the owning nodes.
//
// Each source has a primary owner and (replication factor permitting)
// replica owners. Dispatch is hedged: after a per-node latency
// percentile deadline the same sub-request is re-issued to the replica
// and the first success wins, cutting tail latency when a node is slow;
// on failure the replica is tried immediately, and only when every
// owner fails is the answer marked degraded for those sources. The
// merged fragments run through the exact single-node pipeline (plan,
// generate, serialize), so a healthy cluster's answers are
// byte-identical to a single node's. See docs/CLUSTER.md.
package cluster

import (
	"net/http"
	"time"
)

// Defaults for Options.
const (
	// DefaultReplicationFactor is how many member nodes own each source
	// (one primary plus one replica).
	DefaultReplicationFactor = 2
	// DefaultVirtualNodes is the number of ring points per member; more
	// points spread sources more evenly at the cost of ring size.
	DefaultVirtualNodes = 64
	// DefaultHeartbeatInterval is how often a member beats the
	// coordinator.
	DefaultHeartbeatInterval = 500 * time.Millisecond
	// DefaultSuspectAfter is the silence after which a member is
	// suspect: still an owner, but dispatch prefers alive replicas.
	DefaultSuspectAfter = 2 * time.Second
	// DefaultDeadAfter is the silence after which a member is dead.
	DefaultDeadAfter = 6 * time.Second
	// DefaultHedgeDelay is the hedge deadline used until a node has
	// enough latency samples for a percentile estimate.
	DefaultHedgeDelay = 25 * time.Millisecond
	// DefaultHedgePercentile is the per-node latency quantile the hedge
	// deadline tracks once samples exist.
	DefaultHedgePercentile = 0.9
	// DefaultHedgeMinSamples is how many latency samples a node needs
	// before its percentile replaces DefaultHedgeDelay.
	DefaultHedgeMinSamples = 8
	// DefaultRequestTimeout bounds one sub-request to one node.
	DefaultRequestTimeout = 10 * time.Second
)

// Member statuses, derived from heartbeat recency at read time.
const (
	StatusAlive   = "alive"
	StatusSuspect = "suspect"
	StatusDead    = "dead"
)

// Options configure a cluster node.
type Options struct {
	// ID names this node within the cluster. Required.
	ID string
	// Addr is the node's advertised base URL (e.g. "http://host:port").
	// Test harnesses that learn their address late can use SetAddr.
	Addr string
	// CoordinatorURL, when set, makes this node a member that joins and
	// heartbeats the coordinator at that base URL; when empty the node
	// is the coordinator.
	CoordinatorURL string
	// ReplicationFactor is how many members own each source; 0 means
	// DefaultReplicationFactor, clamped to the member count.
	ReplicationFactor int
	// VirtualNodes is the ring points per member; 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
	// HeartbeatInterval, SuspectAfter, and DeadAfter tune failure
	// detection; zero values use the defaults.
	HeartbeatInterval time.Duration
	SuspectAfter      time.Duration
	DeadAfter         time.Duration
	// HedgeDelay is the fixed hedge deadline used until HedgeMinSamples
	// latency observations exist for the target node, after which the
	// HedgePercentile of its observed sub-request latency is used.
	// Zero values use the defaults.
	HedgeDelay      time.Duration
	HedgePercentile float64
	HedgeMinSamples int
	// DisableHedging turns tail-latency hedging off; failover on error
	// still happens.
	DisableHedging bool
	// RequestTimeout bounds each sub-request; 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// HTTPClient is used for intra-cluster calls; nil uses a client
	// with RequestTimeout.
	HTTPClient *http.Client
	// Now and After are the clock seams (failure detection, latency
	// measurement, hedge timers); nil uses the real clock. Tests inject
	// fakes, and the determinism analyzer enforces that no raw clock
	// call bypasses them.
	Now   func() time.Time
	After func(d time.Duration) <-chan time.Time
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.ReplicationFactor <= 0 {
		o.ReplicationFactor = DefaultReplicationFactor
	}
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = DefaultVirtualNodes
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = DefaultSuspectAfter
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = DefaultDeadAfter
	}
	if o.HedgeDelay <= 0 {
		o.HedgeDelay = DefaultHedgeDelay
	}
	if o.HedgePercentile <= 0 || o.HedgePercentile > 1 {
		o.HedgePercentile = DefaultHedgePercentile
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = DefaultHedgeMinSamples
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.After == nil {
		o.After = time.After
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: o.RequestTimeout}
	}
	return o
}
