package cluster

// node.go is the cluster node: an http.Handler that fronts a
// transport.Server with the /cluster/* routes layered on top. A
// coordinator node tracks membership and owns the catalog; a member
// node joins a coordinator, heartbeats it, and serves restricted
// extraction sub-requests. Registrations POSTed to a coordinator's
// /sources and /mappings are intercepted so the catalog records them
// and the version counter advances.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Node is one cluster participant wrapping a transport server.
type Node struct {
	opts Options
	srv  *transport.Server
	mw   *core.Middleware
	mux  *http.ServeMux

	// cat is the replicated catalog. The coordinator's copy is
	// authoritative; members track the version they last applied.
	cat *catalog

	mu sync.Mutex
	// members is the coordinator's membership table (coordinator only),
	// keyed by node ID. The coordinator lists itself.
	members map[string]*memberState
	// addr is the advertised address (mutable via SetAddr for harnesses
	// that learn their listener address late).
	addr string
	// appliedVersion is the catalog version a member has applied.
	appliedVersion uint64

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// memberState is one member's liveness record on the coordinator.
type memberState struct {
	addr           string
	lastBeat       time.Time
	healthy        bool
	catalogVersion uint64
	self           bool
}

// NewNode wraps a transport server as a cluster node. With
// Options.CoordinatorURL empty the node is the coordinator and seeds
// the replicated catalog from its middleware's registrations;
// otherwise it is a member that must Join (or Start) against the
// coordinator.
func NewNode(srv *transport.Server, opts Options) (*Node, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("cluster: Options.ID is required")
	}
	opts = opts.withDefaults()
	n := &Node{
		opts:   opts,
		srv:    srv,
		mw:     srv.Middleware(),
		mux:    http.NewServeMux(),
		addr:   opts.Addr,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	if n.coordinator() {
		n.cat = snapshotCatalog(n.mw)
		n.members = map[string]*memberState{
			opts.ID: {addr: opts.Addr, healthy: true, catalogVersion: n.cat.version(), self: true},
		}
		n.appliedVersion = n.cat.version()
		n.mux.HandleFunc("/cluster/query", n.handleClusterQuery)
		n.mux.HandleFunc("/cluster/heartbeat", n.handleHeartbeat)
		n.mux.HandleFunc("/cluster/join", n.handleHeartbeat)
		n.mux.HandleFunc("/cluster/catalog", n.handleCatalog)
	}
	n.mux.HandleFunc("/cluster/extract", n.handleClusterExtract)
	n.mux.HandleFunc("/cluster/members", n.handleMembers)
	return n, nil
}

// coordinator reports whether this node coordinates the cluster.
func (n *Node) coordinator() bool { return n.opts.CoordinatorURL == "" }

// SetAddr updates the advertised address (httptest harnesses bind
// before they know their URL).
func (n *Node) SetAddr(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addr = addr
	if n.coordinator() {
		n.members[n.opts.ID].addr = addr
	}
}

// Addr returns the advertised address.
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addr
}

// ServeHTTP routes /cluster/* to the cluster layer, intercepts catalog
// mutations on the coordinator, and delegates everything else to the
// wrapped transport server.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/cluster/") {
		n.mux.ServeHTTP(w, r)
		return
	}
	if n.coordinator() && r.Method == http.MethodPost {
		switch r.URL.Path {
		case "/sources":
			n.handleRegisterSource(w, r)
			return
		case "/mappings":
			n.handleRegisterMapping(w, r)
			return
		}
	}
	n.srv.ServeHTTP(w, r)
}

// clusterError mirrors the transport error envelope.
func clusterError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, map[string]string{"error": err.Error()})
}

// writeJSON encodes v onto the response. Handlers funnel their replies
// through here so the deliberate discard below is the only one.
func writeJSON(w http.ResponseWriter, v any) {
	//lint:ignore errcheck a response-encode failure means the peer hung up; the dead connection is the only place to report it
	_ = json.NewEncoder(w).Encode(v)
}

// handleRegisterSource registers a source on the coordinator and
// records it in the replicated catalog, bumping the version so members
// pull it on their next heartbeat.
func (n *Node) handleRegisterSource(w http.ResponseWriter, r *http.Request) {
	var ws transport.WireSource
	if err := json.NewDecoder(r.Body).Decode(&ws); err != nil {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding source: %w", err))
		return
	}
	def, err := ws.ToDefinition()
	if err != nil {
		clusterError(w, http.StatusBadRequest, err)
		return
	}
	if err := n.mw.RegisterSource(def); err != nil {
		clusterError(w, http.StatusConflict, err)
		return
	}
	n.cat.recordSource(ws)
	w.WriteHeader(http.StatusCreated)
}

// handleRegisterMapping is handleRegisterSource for mapping entries.
func (n *Node) handleRegisterMapping(w http.ResponseWriter, r *http.Request) {
	var wm transport.WireMapping
	if err := json.NewDecoder(r.Body).Decode(&wm); err != nil {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding mapping: %w", err))
		return
	}
	entry, err := wm.ToEntry()
	if err != nil {
		clusterError(w, http.StatusBadRequest, err)
		return
	}
	if err := n.mw.RegisterMapping(entry); err != nil {
		clusterError(w, http.StatusConflict, err)
		return
	}
	n.cat.recordMapping(wm)
	w.WriteHeader(http.StatusCreated)
}

// handleHeartbeat serves POST /cluster/heartbeat and /cluster/join on
// the coordinator: record the member's beat, health, and catalog
// version, and answer with the membership view. A join additionally
// returns the full catalog so the joiner syncs in one round trip.
func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		clusterError(w, http.StatusMethodNotAllowed, fmt.Errorf("cluster: %s not allowed", r.Method))
		return
	}
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding heartbeat: %w", err))
		return
	}
	if req.Node == "" {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("cluster: heartbeat without node id"))
		return
	}
	n.mw.Metrics().Counter(obs.MetricClusterHeartbeats, obs.Labels{"node": req.Node}).Inc()
	n.mu.Lock()
	st, ok := n.members[req.Node]
	if !ok {
		st = &memberState{}
		n.members[req.Node] = st
	}
	st.addr = req.Addr
	st.lastBeat = n.opts.Now()
	st.healthy = req.Healthy
	st.catalogVersion = req.CatalogVersion
	n.mu.Unlock()

	resp := heartbeatResponse{CatalogVersion: n.cat.version(), Members: n.Members()}
	if strings.HasSuffix(r.URL.Path, "/join") {
		cs := n.cat.snapshot()
		resp.Catalog = &cs
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

// handleCatalog serves GET /cluster/catalog on the coordinator.
func (n *Node) handleCatalog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		clusterError(w, http.StatusMethodNotAllowed, fmt.Errorf("cluster: %s not allowed", r.Method))
		return
	}
	cs := n.cat.snapshot()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, cs)
}

// handleMembers serves GET /cluster/members: the coordinator's live
// view, or (on a member) the member's own identity row.
func (n *Node) handleMembers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		clusterError(w, http.StatusMethodNotAllowed, fmt.Errorf("cluster: %s not allowed", r.Method))
		return
	}
	var members []Member
	if n.coordinator() {
		members = n.Members()
	} else {
		members = []Member{{ID: n.opts.ID, Addr: n.Addr(), Status: StatusAlive, CatalogVersion: n.appliedCatalogVersion()}}
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, members)
}

// Members snapshots the coordinator's membership view, sorted by node
// ID, with each member's status derived from heartbeat recency: alive
// within SuspectAfter, suspect within DeadAfter, dead past it. The
// coordinator itself is always alive.
func (n *Node) Members() []Member {
	now := n.opts.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for id, st := range n.members {
		m := Member{ID: id, Addr: st.addr, Status: StatusAlive, Unhealthy: !st.healthy, CatalogVersion: st.catalogVersion}
		if st.self {
			m.Unhealthy = n.srv.Health().Status != "ok"
			m.CatalogVersion = n.cat.version()
		} else {
			switch silence := now.Sub(st.lastBeat); {
			case silence > n.opts.DeadAfter:
				m.Status = StatusDead
			case silence > n.opts.SuspectAfter:
				m.Status = StatusSuspect
			}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// appliedCatalogVersion is the catalog version this node has applied.
func (n *Node) appliedCatalogVersion() uint64 {
	if n.coordinator() {
		return n.cat.version()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.appliedVersion
}

// setAppliedVersion records a successfully applied catalog version.
func (n *Node) setAppliedVersion(v uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if v > n.appliedVersion {
		n.appliedVersion = v
	}
}

// postJSON POSTs body and decodes the JSON response into out. The
// caller's trace identity rides along in the request headers, so a
// member serving the sub-request joins the coordinator's trace instead
// of starting its own.
func (n *Node) postJSON(ctx context.Context, url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("cluster: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if span := obs.SpanFromContext(ctx); span != nil {
		req.Header.Set(transport.TraceIDHeader, span.TraceID)
		req.Header.Set(transport.SpanIDHeader, span.ID)
	}
	resp, err := n.opts.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: calling %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if jerr := json.NewDecoder(resp.Body).Decode(&e); jerr == nil && e.Error != "" {
			return fmt.Errorf("cluster: %s: %s (status %d)", url, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("cluster: %s: status %s", url, resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("cluster: decoding response: %w", err)
		}
	}
	return nil
}

// heartbeat beats the coordinator once. join asks for the catalog
// inline; otherwise the catalog is pulled only when the advertised
// version is ahead of what this node applied.
func (n *Node) heartbeat(ctx context.Context, join bool) error {
	path := "/cluster/heartbeat"
	if join {
		path = "/cluster/join"
	}
	req := heartbeatRequest{
		Node:           n.opts.ID,
		Addr:           n.Addr(),
		CatalogVersion: n.appliedCatalogVersion(),
		Healthy:        n.srv.Health().Status == "ok",
	}
	var resp heartbeatResponse
	if err := n.postJSON(ctx, n.opts.CoordinatorURL+path, req, &resp); err != nil {
		return err
	}
	if resp.Catalog != nil {
		if err := applyCatalog(n.mw, *resp.Catalog); err != nil {
			return err
		}
		n.setAppliedVersion(resp.Catalog.Version)
		return nil
	}
	if resp.CatalogVersion > n.appliedCatalogVersion() {
		return n.syncCatalog(ctx)
	}
	return nil
}

// Join announces this member to the coordinator and applies the
// coordinator's catalog.
func (n *Node) Join(ctx context.Context) error {
	if n.coordinator() {
		return fmt.Errorf("cluster: the coordinator does not join")
	}
	return n.heartbeat(ctx, true)
}

// HeartbeatOnce beats the coordinator synchronously (tests drive the
// heartbeat loop deterministically with it).
func (n *Node) HeartbeatOnce(ctx context.Context) error {
	if n.coordinator() {
		return nil
	}
	return n.heartbeat(ctx, false)
}

// syncCatalog pulls the coordinator's catalog and applies it.
func (n *Node) syncCatalog(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.opts.CoordinatorURL+"/cluster/catalog", nil)
	if err != nil {
		return fmt.Errorf("cluster: building request: %w", err)
	}
	resp, err := n.opts.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: pulling catalog: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: pulling catalog: status %s", resp.Status)
	}
	var cs catalogState
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return fmt.Errorf("cluster: decoding catalog: %w", err)
	}
	if err := applyCatalog(n.mw, cs); err != nil {
		return err
	}
	n.setAppliedVersion(cs.Version)
	n.mw.Metrics().Counter(obs.MetricClusterCatalogSyncs, nil).Inc()
	return nil
}

// Start joins the coordinator and runs the heartbeat loop until Stop.
// The coordinator needs no loop; Start is a no-op there.
func (n *Node) Start(ctx context.Context) error {
	if n.coordinator() {
		close(n.doneCh)
		return nil
	}
	if err := n.Join(ctx); err != nil {
		return err
	}
	go func() {
		defer close(n.doneCh)
		for {
			select {
			case <-n.stopCh:
				return
			case <-n.opts.After(n.opts.HeartbeatInterval):
				hctx, cancel := context.WithTimeout(context.Background(), n.opts.RequestTimeout)
				//lint:ignore errcheck a missed beat is the failure detector's business; the suspicion state is the error channel
				_ = n.HeartbeatOnce(hctx)
				cancel()
			}
		}
	}()
	return nil
}

// Stop ends the heartbeat loop.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	<-n.doneCh
}

// ensureCatalog brings a member at least up to the given catalog
// version before it serves a sub-request planned against it — the
// deterministic answer to the coordinator catalog race.
func (n *Node) ensureCatalog(ctx context.Context, version uint64) error {
	if n.coordinator() || version == 0 || n.appliedCatalogVersion() >= version {
		return nil
	}
	if err := n.syncCatalog(ctx); err != nil {
		return err
	}
	if have := n.appliedCatalogVersion(); have < version {
		return fmt.Errorf("cluster: catalog behind after sync: have %d, need %d", have, version)
	}
	return nil
}

// handleClusterExtract serves POST /cluster/extract: restricted
// extraction for the sources this node owns in some coordinator's
// partitioning.
func (n *Node) handleClusterExtract(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		clusterError(w, http.StatusMethodNotAllowed, fmt.Errorf("cluster: %s not allowed", r.Method))
		return
	}
	var req extractRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding extract request: %w", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" || len(req.Sources) == 0 {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("cluster: extract request needs a query and sources"))
		return
	}
	// Join the coordinator's trace when the sub-request carries one, so a
	// scatter-gather query reads as one federated tree: the member's
	// cluster_extract root (and the per-source spans under it) share the
	// coordinator's trace ID.
	ctx := obs.ContextWithMetrics(r.Context(), n.mw.Metrics())
	if tid := r.Header.Get(transport.TraceIDHeader); tid != "" {
		ctx = obs.ContextWithRemote(ctx, obs.Remote{TraceID: tid, ParentID: r.Header.Get(transport.SpanIDHeader)})
	}
	ctx, root := n.mw.Tracer().StartTrace(ctx, "cluster_extract")
	w.Header().Set(transport.TraceIDHeader, root.TraceID)
	if err := n.ensureCatalog(ctx, req.CatalogVersion); err != nil {
		root.SetAttr("outcome", "error")
		root.End()
		clusterError(w, http.StatusServiceUnavailable, err)
		return
	}
	plan, err := n.mw.Plan(ctx, req.Query)
	if err != nil {
		root.SetAttr("outcome", "error")
		root.End()
		clusterError(w, http.StatusBadRequest, err)
		return
	}
	rs, err := n.mw.ExtractPlanSources(ctx, plan, req.Sources)
	if err != nil {
		root.SetAttr("outcome", "error")
		root.End()
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	root.SetAttr("outcome", "ok")
	root.End()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, toWire(rs))
}

// handleClusterQuery serves /cluster/query on the coordinator: the
// regular query surface (GET ?q=&format= or a POSTed QueryRequest),
// answered by scatter-gather across the owning nodes and merged
// through the single-node pipeline, with the dispatch summary attached.
func (n *Node) handleClusterQuery(w http.ResponseWriter, r *http.Request) {
	var req transport.QueryRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding request: %w", err))
			return
		}
	case http.MethodGet:
		req.Query = r.URL.Query().Get("q")
		req.Format = r.URL.Query().Get("format")
	default:
		clusterError(w, http.StatusMethodNotAllowed, fmt.Errorf("cluster: %s not allowed", r.Method))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("cluster: empty query"))
		return
	}
	format := instance.FormatOWL
	if req.Format != "" {
		f, err := instance.ParseFormat(req.Format)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		format = f
	}

	ctx := obs.ContextWithMetrics(r.Context(), n.mw.Metrics())
	if tid := r.Header.Get(transport.TraceIDHeader); tid != "" {
		ctx = obs.ContextWithRemote(ctx, obs.Remote{TraceID: tid, ParentID: r.Header.Get(transport.SpanIDHeader)})
	}
	ctx, root := n.mw.Tracer().StartTrace(ctx, "http_query")
	w.Header().Set(transport.TraceIDHeader, root.TraceID)

	res, info, err := n.QueryCluster(ctx, req.Query)
	if err != nil {
		root.SetAttr("outcome", "error")
		root.End()
		clusterError(w, http.StatusBadRequest, err)
		return
	}
	var buf bytes.Buffer
	err = n.mw.Generator().SerializeContext(ctx, &buf, res, format)
	root.SetAttr("outcome", "ok")
	root.End()
	if err != nil {
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	resp := QueryResponse{
		QueryResponse: transport.QueryResponse{
			Query:   res.Plan.Query.String(),
			Format:  format.String(),
			Matched: len(res.Matched),
			Related: len(res.Related),
			Missing: res.Missing,
			Body:    buf.String(),
		},
		Cluster: *info,
	}
	for _, e := range res.Errors {
		resp.Errors = append(resp.Errors, e.Error())
	}
	for _, d := range res.Degraded {
		resp.Degraded = append(resp.Degraded, d.String())
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}
