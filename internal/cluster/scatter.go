package cluster

// scatter.go is the coordinator's execution engine. A query is planned
// locally, its sources are grouped by owner set on the consistent-hash
// ring, and each group is dispatched to its owners: primary first,
// hedged to the replica after a per-node latency-percentile deadline,
// failed over to the replica immediately on error. The per-group
// result sets merge into one, failovers are re-marked against the full
// schema, and the canonical sort restores the exact single-node order
// — which is what keeps the generated answer byte-identical.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/s2sql"
)

// QueryCluster answers one query by scatter-gather across the cluster,
// returning the instance result and the dispatch summary. Only the
// coordinator can serve it.
func (n *Node) QueryCluster(ctx context.Context, query string) (*instance.Result, *Info, error) {
	if !n.coordinator() {
		return nil, nil, fmt.Errorf("cluster: node %s is not the coordinator", n.opts.ID)
	}
	info := &Info{Coordinator: n.opts.ID}
	res, err := n.mw.QueryWithExtractor(ctx, query, func(ctx context.Context, plan *s2sql.Plan) (*extract.ResultSet, error) {
		return n.scatterExtract(ctx, query, plan, info)
	})
	if err != nil {
		return nil, nil, err
	}
	info.Degraded = len(info.LostSources) > 0
	return res, info, nil
}

// ownerGroup is one dispatch unit: the sources that share an owner
// list.
type ownerGroup struct {
	owners  []string
	sources []string
}

// scatterExtract partitions the plan's sources by ring ownership and
// extracts each group on its owning nodes, merging the results into
// one canonical result set.
func (n *Node) scatterExtract(ctx context.Context, query string, plan *s2sql.Plan, info *Info) (*extract.ResultSet, error) {
	schemaStart := n.opts.Now()
	plans, missing, err := n.mw.Mappings().Schema(plan.AttributeIDs())
	if err != nil {
		return nil, fmt.Errorf("extract: obtaining extraction schema: %w", err)
	}
	members := n.Members()
	statusOf := make(map[string]string, len(members))
	addrOf := make(map[string]string, len(members))
	ids := make([]string, 0, len(members))
	for _, m := range members {
		ids = append(ids, m.ID)
		statusOf[m.ID] = m.Status
		addrOf[m.ID] = m.Addr
	}
	info.Nodes = len(members)

	// Ownership hashes over every member regardless of status, so a
	// flapping node does not reshuffle the partitioning; dispatch order
	// (not ownership) is what reacts to liveness.
	ring := buildRing(ids, n.opts.VirtualNodes)
	rf := n.opts.ReplicationFactor
	if rf > len(ids) {
		rf = len(ids)
	}
	groups := map[string]*ownerGroup{}
	var order []string
	for _, p := range plans {
		owners := ring.owners(p.Source.ID, rf)
		key := strings.Join(owners, ",")
		g, ok := groups[key]
		if !ok {
			g = &ownerGroup{owners: owners}
			groups[key] = g
			order = append(order, key)
		}
		g.sources = append(g.sources, p.Source.ID)
	}
	// Embed the coordinator's cost-ordering hint in each group's source
	// list: restricted extraction preserves the caller's order, so the
	// owning node runs cheapest-most-selective sources first even though
	// its own statistics never observed them.
	for _, g := range groups {
		g.sources = n.mw.OrderExtractSources(plan, g.sources)
	}
	info.Subqueries = len(groups)

	merged := &extract.ResultSet{Missing: missing}
	merged.Stats.SchemaDuration = n.opts.Now().Sub(schemaStart)
	version := n.cat.version()
	extractStart := n.opts.Now()

	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, key := range order {
		g := groups[key]
		wg.Add(1)
		go func(g *ownerGroup) {
			defer wg.Done()
			rs := n.dispatchGroup(ctx, query, version, g, statusOf, addrOf, info, &mu)
			mu.Lock()
			merged.Fragments = append(merged.Fragments, rs.Fragments...)
			merged.Errors = append(merged.Errors, rs.Errors...)
			merged.Degraded = append(merged.Degraded, rs.Degraded...)
			merged.Stats.SourcesContacted += rs.Stats.SourcesContacted
			merged.Stats.ValuesExtracted += rs.Stats.ValuesExtracted
			merged.Stats.Retries += rs.Stats.Retries
			merged.Stats.CacheHits += rs.Stats.CacheHits
			merged.Stats.StaleServes += rs.Stats.StaleServes
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	merged.Stats.ExtractDuration = n.opts.Now().Sub(extractStart)

	// Failover marking needs the global fragment view, so it runs once
	// over the merged set — against the coordinator's full schema plans,
	// exactly like the single-node pipeline.
	extract.MarkFailovers(merged, plans, n.mw.Metrics())
	merged.SortCanonical()
	return merged, nil
}

// attemptResult is one node's answer to a group dispatch.
type attemptResult struct {
	rs    *extract.ResultSet
	err   error
	node  string
	hedge bool
}

// dispatchGroup extracts one owner group's sources, trying the owners
// in liveness order: the primary first, a hedge to the next owner when
// the latency deadline fires, an immediate failover to the next owner
// when an attempt errors. The first success wins and the losers are
// cancelled. When every owner fails the group degrades to synthetic
// per-source errors instead of failing the query.
func (n *Node) dispatchGroup(ctx context.Context, query string, version uint64, g *ownerGroup, statusOf, addrOf map[string]string, info *Info, infoMu *sync.Mutex) *extract.ResultSet {
	candidates := orderByLiveness(g.owners, statusOf)
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan attemptResult, len(candidates))
	cancels := make([]context.CancelFunc, len(candidates))
	launch := func(i int, hedge bool) {
		actx, cancel := context.WithCancel(ctx)
		cancels[i] = cancel
		node := candidates[i]
		go func() {
			rs, err := n.extractOn(actx, node, addrOf[node], query, version, g.sources)
			results <- attemptResult{rs: rs, err: err, node: node, hedge: hedge}
		}()
	}

	launch(0, false)
	launched := 1
	var hedgeCh <-chan time.Time
	hedgePending := false
	if !n.opts.DisableHedging && len(candidates) > 1 {
		hedgeCh = n.opts.After(n.hedgeDelayFor(candidates[0]))
		hedgePending = true
	}

	inFlight := 1
	var lastErr error
	for {
		select {
		case res := <-results:
			inFlight--
			if res.err == nil {
				// Winner: cancel the losers and settle the hedge outcome.
				for i := 0; i < launched; i++ {
					if candidates[i] != res.node && cancels[i] != nil {
						cancels[i]()
					}
				}
				infoMu.Lock()
				if res.hedge {
					info.HedgeWins++
					n.mw.Metrics().Counter(obs.MetricClusterHedges, obs.Labels{"outcome": obs.OutcomeHedgeWon}).Inc()
				} else if inFlight > 0 {
					// A hedge (or failover) was still running and lost.
					n.mw.Metrics().Counter(obs.MetricClusterHedges, obs.Labels{"outcome": obs.OutcomeHedgeLost}).Inc()
				}
				if res.node != candidates[0] && !res.hedge {
					info.Failovers++
				}
				infoMu.Unlock()
				return res.rs
			}
			lastErr = res.err
			if ctx.Err() != nil {
				return n.groupLost(g, lastErr, info, infoMu)
			}
			if launched < len(candidates) {
				// Failover: the next owner takes over immediately.
				n.mw.Metrics().Counter(obs.MetricClusterSubqueries,
					obs.Labels{"node": candidates[launched], "outcome": obs.OutcomeFailover}).Inc()
				launch(launched, false)
				launched++
				inFlight++
				hedgePending = false
			} else if inFlight == 0 {
				return n.groupLost(g, lastErr, info, infoMu)
			}
		case <-hedgeCh:
			hedgeCh = nil
			if !hedgePending || launched >= len(candidates) {
				continue
			}
			hedgePending = false
			infoMu.Lock()
			info.Hedged++
			infoMu.Unlock()
			launch(launched, true)
			launched++
			inFlight++
		case <-ctx.Done():
			return n.groupLost(g, ctx.Err(), info, infoMu)
		}
	}
}

// groupLost degrades a group every owner failed: each of its sources
// reports a synthetic whole-source error, and the answer is marked
// degraded for them.
func (n *Node) groupLost(g *ownerGroup, lastErr error, info *Info, infoMu *sync.Mutex) *extract.ResultSet {
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no owner answered")
	}
	infoMu.Lock()
	info.LostSources = append(info.LostSources, g.sources...)
	infoMu.Unlock()
	rs := &extract.ResultSet{}
	for _, src := range g.sources {
		rs.Errors = append(rs.Errors, extract.SourceError{
			SourceID: src,
			Err:      fmt.Errorf("cluster: owners %s unavailable: %w", strings.Join(g.owners, ","), lastErr),
		})
	}
	return rs
}

// orderByLiveness keeps the owner order (primary first) within each
// liveness class but prefers alive owners over suspect ones and
// suspect over dead — a dead primary's replica answers directly
// instead of waiting out a timeout.
func orderByLiveness(owners []string, statusOf map[string]string) []string {
	rank := func(id string) int {
		switch statusOf[id] {
		case StatusSuspect:
			return 1
		case StatusDead:
			return 2
		default:
			return 0
		}
	}
	out := make([]string, 0, len(owners))
	for _, class := range []int{0, 1, 2} {
		for _, id := range owners {
			if rank(id) == class {
				out = append(out, id)
			}
		}
	}
	return out
}

// hedgeDelayFor is the hedge deadline for a node: the configured
// latency percentile of its observed sub-request latency once enough
// samples exist, the fixed HedgeDelay until then.
func (n *Node) hedgeDelayFor(node string) time.Duration {
	h := n.mw.Metrics().Histogram(obs.MetricClusterSubqueryDuration, obs.Labels{"node": node})
	if h.Count() >= uint64(n.opts.HedgeMinSamples) {
		if q := h.Quantile(n.opts.HedgePercentile); q > 0 {
			return time.Duration(q * float64(time.Second))
		}
	}
	return n.opts.HedgeDelay
}

// extractOn runs a restricted extraction on one node: in process when
// the node is this coordinator, over the wire otherwise. Latency and
// outcome are observed per node; the latency histogram drives the
// hedge deadline.
func (n *Node) extractOn(ctx context.Context, node, addr, query string, version uint64, sources []string) (*extract.ResultSet, error) {
	start := n.opts.Now()
	var rs *extract.ResultSet
	var err error
	if node == n.opts.ID {
		var plan *s2sql.Plan
		plan, err = n.mw.Plan(ctx, query)
		if err == nil {
			rs, err = n.mw.ExtractPlanSources(ctx, plan, sources)
		}
	} else {
		ctx, cancel := context.WithTimeout(ctx, n.opts.RequestTimeout)
		defer cancel()
		var resp extractResponse
		err = n.postJSON(ctx, addr+"/cluster/extract", extractRequest{
			Query: query, Sources: sources, CatalogVersion: version,
		}, &resp)
		if err == nil {
			rs = fromWire(resp)
		}
	}
	outcome := obs.OutcomeOK
	switch {
	case err == nil:
		n.mw.Metrics().Histogram(obs.MetricClusterSubqueryDuration, obs.Labels{"node": node}).
			Observe(n.opts.Now().Sub(start).Seconds())
	case ctx.Err() != nil:
		outcome = obs.OutcomeCanceled
	default:
		outcome = obs.OutcomeError
	}
	n.mw.Metrics().Counter(obs.MetricClusterSubqueries, obs.Labels{"node": node, "outcome": outcome}).Inc()
	return rs, err
}
