package cluster

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

const docPath = "../../docs/CLUSTER.md"

// TestDocCoversClusterSurface keeps docs/CLUSTER.md in lockstep with
// the code (mirroring internal/obs/docs_test.go): every /cluster route
// the node registers, every member status, the cluster metric families,
// and the tunable defaults the doc quotes must all match what the
// package actually exposes.
func TestDocCoversClusterSurface(t *testing.T) {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("read %s: %v", docPath, err)
	}
	// Collapse the doc's hard line wraps so quoted phrases match
	// regardless of where the prose breaks.
	doc := strings.Join(strings.Fields(string(raw)), " ")

	for _, route := range []string{
		"/cluster/join",
		"/cluster/heartbeat",
		"/cluster/catalog",
		"/cluster/members",
		"/cluster/extract",
		"/cluster/query",
	} {
		if !strings.Contains(doc, "`"+route) && !strings.Contains(doc, route+"`") {
			t.Errorf("route %s is served but not documented in %s", route, docPath)
		}
	}

	for _, status := range []string{StatusAlive, StatusSuspect, StatusDead} {
		if !strings.Contains(doc, "`"+status+"`") {
			t.Errorf("member status %q is not documented in %s", status, docPath)
		}
	}

	for _, metric := range []string{obs.MetricClusterHedges, obs.MetricClusterCatalogSyncs} {
		if !strings.Contains(doc, metric) {
			t.Errorf("metric %s is cited by the design but missing from %s", metric, docPath)
		}
	}

	// The defaults the prose quotes must track the code's constants.
	for _, want := range []string{
		fmt.Sprintf("`HeartbeatInterval`, default %dms", DefaultHeartbeatInterval/time.Millisecond),
		fmt.Sprintf("`SuspectAfter` (%ds)", DefaultSuspectAfter/time.Second),
		fmt.Sprintf("`DeadAfter` (%ds)", DefaultDeadAfter/time.Second),
		fmt.Sprintf("`VirtualNodes` (%d)", DefaultVirtualNodes),
		fmt.Sprintf("`ReplicationFactor` (%d)", DefaultReplicationFactor),
		fmt.Sprintf("`HedgeMinSamples` (%d)", DefaultHedgeMinSamples),
		fmt.Sprintf("`HedgeDelay` (%dms)", DefaultHedgeDelay/time.Millisecond),
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("doc does not quote the code's default: %s missing from %s", want, docPath)
		}
	}

	for _, anchor := range []string{"byte-identical", "make chaos-cluster", "make bench-hedge", "BENCH_hedge.json"} {
		if !strings.Contains(doc, anchor) {
			t.Errorf("doc is missing its %q anchor", anchor)
		}
	}
}
