package cluster

// wire.go is the intra-cluster protocol: heartbeats (membership +
// catalog version advertisement), restricted extraction sub-requests,
// and the cluster query envelope. Extraction results cross the wire as
// plain data — fragment values, error messages, degradation records —
// and are rebuilt into extract types on the coordinator, preserving the
// message text exactly so merged answers serialize byte-identically to
// single-node ones.

import (
	"errors"
	"time"

	"repro/internal/extract"
	"repro/internal/mapping"
	"repro/internal/transport"
)

// Member is one node as the coordinator sees it.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Status is derived from heartbeat recency at read time: alive,
	// suspect, or dead. The coordinator itself is always alive.
	Status string `json:"status"`
	// Unhealthy carries the member's own health self-report (breakers
	// open, shedding at capacity): the node is up but impaired.
	Unhealthy bool `json:"unhealthy,omitempty"`
	// CatalogVersion is the member's last advertised catalog version.
	CatalogVersion uint64 `json:"catalogVersion"`
}

// heartbeatRequest is the body of POST /cluster/heartbeat and
// /cluster/join.
type heartbeatRequest struct {
	Node           string `json:"node"`
	Addr           string `json:"addr"`
	CatalogVersion uint64 `json:"catalogVersion"`
	Healthy        bool   `json:"healthy"`
}

// heartbeatResponse acknowledges a heartbeat with the coordinator's
// catalog version (so a behind member knows to pull) and the current
// membership view. A join response additionally carries the catalog.
type heartbeatResponse struct {
	CatalogVersion uint64        `json:"catalogVersion"`
	Members        []Member      `json:"members"`
	Catalog        *catalogState `json:"catalog,omitempty"`
}

// extractRequest is the body of POST /cluster/extract: run the query's
// extraction restricted to the listed sources. CatalogVersion is the
// coordinator's version at dispatch time; a member that is behind
// syncs before extracting, which closes the catalog race — a query
// planned against version N never runs against older mappings.
type extractRequest struct {
	Query          string   `json:"query"`
	Sources        []string `json:"sources"`
	CatalogVersion uint64   `json:"catalogVersion"`
}

// wireFragment is extract.Fragment in wire form.
type wireFragment struct {
	Attribute string   `json:"attribute"`
	Source    string   `json:"source"`
	Scenario  int      `json:"scenario"`
	Values    []string `json:"values"`
	Degraded  bool     `json:"degraded,omitempty"`
	StaleNS   int64    `json:"staleNs,omitempty"`
}

// wireSourceError is extract.SourceError in wire form; the message
// round-trips verbatim so the merged envelope is byte-identical.
type wireSourceError struct {
	Source    string `json:"source"`
	Attribute string `json:"attribute,omitempty"`
	Error     string `json:"error"`
	Permanent bool   `json:"permanent,omitempty"`
}

// wireDegradation is extract.Degradation in wire form.
type wireDegradation struct {
	Source    string `json:"source"`
	Attribute string `json:"attribute"`
	StaleNS   int64  `json:"staleNs"`
	Error     string `json:"error"`
}

// wireStats is extract.Stats in wire form.
type wireStats struct {
	SourcesContacted int   `json:"sourcesContacted"`
	ValuesExtracted  int   `json:"valuesExtracted"`
	SchemaNS         int64 `json:"schemaNs"`
	ExtractNS        int64 `json:"extractNs"`
	Retries          int   `json:"retries"`
	CacheHits        int   `json:"cacheHits"`
	StaleServes      int   `json:"staleServes"`
}

// extractResponse is one node's answer to a restricted extraction.
type extractResponse struct {
	Fragments []wireFragment    `json:"fragments"`
	Errors    []wireSourceError `json:"errors,omitempty"`
	Degraded  []wireDegradation `json:"degraded,omitempty"`
	Stats     wireStats         `json:"stats"`
}

// Info annotates a cluster query answer with how the fleet served it.
type Info struct {
	// Coordinator is the answering coordinator's node ID and Nodes the
	// member count at dispatch.
	Coordinator string `json:"coordinator"`
	Nodes       int    `json:"nodes"`
	// Subqueries is how many owner groups extraction was split into.
	Subqueries int `json:"subqueries"`
	// Hedged counts sub-requests whose hedge fired; HedgeWins those the
	// hedge answered first.
	Hedged    int `json:"hedged,omitempty"`
	HedgeWins int `json:"hedgeWins,omitempty"`
	// Failovers counts sub-requests answered by a replica owner after
	// the primary failed.
	Failovers int `json:"failovers,omitempty"`
	// LostSources lists sources every owner failed to serve; when
	// non-empty the answer is Degraded.
	LostSources []string `json:"lostSources,omitempty"`
	Degraded    bool     `json:"degraded,omitempty"`
}

// QueryResponse is the /cluster/query envelope: the standard transport
// envelope plus the cluster dispatch summary.
type QueryResponse struct {
	transport.QueryResponse
	Cluster Info `json:"cluster"`
}

// toWire flattens a restricted result set for the wire.
func toWire(rs *extract.ResultSet) extractResponse {
	out := extractResponse{
		Fragments: make([]wireFragment, 0, len(rs.Fragments)),
		Stats: wireStats{
			SourcesContacted: rs.Stats.SourcesContacted,
			ValuesExtracted:  rs.Stats.ValuesExtracted,
			SchemaNS:         int64(rs.Stats.SchemaDuration),
			ExtractNS:        int64(rs.Stats.ExtractDuration),
			Retries:          rs.Stats.Retries,
			CacheHits:        rs.Stats.CacheHits,
			StaleServes:      rs.Stats.StaleServes,
		},
	}
	for _, f := range rs.Fragments {
		out.Fragments = append(out.Fragments, wireFragment{
			Attribute: f.AttributeID,
			Source:    f.SourceID,
			Scenario:  int(f.Scenario),
			Values:    f.Values,
			Degraded:  f.Degraded,
			StaleNS:   int64(f.Stale),
		})
	}
	for _, e := range rs.Errors {
		out.Errors = append(out.Errors, wireSourceError{
			Source:    e.SourceID,
			Attribute: e.AttributeID,
			Error:     e.Err.Error(),
			Permanent: extract.IsPermanent(e.Err),
		})
	}
	for _, d := range rs.Degraded {
		out.Degraded = append(out.Degraded, wireDegradation{
			Source:    d.SourceID,
			Attribute: d.AttributeID,
			StaleNS:   int64(d.Stale),
			Error:     d.Err.Error(),
		})
	}
	return out
}

// fromWire rebuilds a result set from the wire form. Error messages
// become opaque errors with identical text (the Permanent marker is
// re-applied), so the instance layer's error reporting cannot tell a
// remote fragment set from a local one.
func fromWire(resp extractResponse) *extract.ResultSet {
	rs := &extract.ResultSet{
		Fragments: make([]extract.Fragment, 0, len(resp.Fragments)),
		Stats: extract.Stats{
			SourcesContacted: resp.Stats.SourcesContacted,
			ValuesExtracted:  resp.Stats.ValuesExtracted,
			SchemaDuration:   time.Duration(resp.Stats.SchemaNS),
			ExtractDuration:  time.Duration(resp.Stats.ExtractNS),
			Retries:          resp.Stats.Retries,
			CacheHits:        resp.Stats.CacheHits,
			StaleServes:      resp.Stats.StaleServes,
		},
	}
	for _, f := range resp.Fragments {
		rs.Fragments = append(rs.Fragments, extract.Fragment{
			AttributeID: f.Attribute,
			SourceID:    f.Source,
			Scenario:    mapping.Scenario(f.Scenario),
			Values:      f.Values,
			Degraded:    f.Degraded,
			Stale:       time.Duration(f.StaleNS),
		})
	}
	for _, e := range resp.Errors {
		err := errors.New(e.Error)
		if e.Permanent {
			err = extract.Permanent(err)
		}
		rs.Errors = append(rs.Errors, extract.SourceError{
			SourceID:    e.Source,
			AttributeID: e.Attribute,
			Err:         err,
		})
	}
	for _, d := range resp.Degraded {
		rs.Degraded = append(rs.Degraded, extract.Degradation{
			SourceID:    d.Source,
			AttributeID: d.Attribute,
			Stale:       time.Duration(d.StaleNS),
			Err:         errors.New(d.Error),
		})
	}
	return rs
}
