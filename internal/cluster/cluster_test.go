package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/transport"
	"repro/internal/workload"
)

// fakeClock is a mutex-guarded manual clock for the Options.Now seam.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// newTestMiddleware builds a middleware over a small deterministic
// world. With apply the world's sources and mappings are registered;
// without it the middleware starts empty (a joining member) but still
// holds the backends needed to serve any replicated source.
func newTestMiddleware(t *testing.T, world *workload.World, apply bool) *core.Middleware {
	t.Helper()
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: extract.FromCatalog(world.Catalog),
	})
	if err != nil {
		t.Fatal(err)
	}
	if apply {
		if err := world.Apply(mw); err != nil {
			t.Fatal(err)
		}
	}
	return mw
}

// TestRingOwnership checks the consistent-hash ring: deterministic,
// distinct owners per key, and every node owning a fair share.
func TestRingOwnership(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r1 := buildRing(nodes, 64)
	r2 := buildRing([]string{"n3", "n1", "n2"}, 64)

	primaries := map[string]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("source-%d", i)
		owners := r1.owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("owners(%q) = %v, want 2 owners", key, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("owners(%q) = %v, replicas must be distinct nodes", key, owners)
		}
		// Node order at build time must not matter.
		if got := r2.owners(key, 2); got[0] != owners[0] || got[1] != owners[1] {
			t.Fatalf("owners(%q) differ across build orders: %v vs %v", key, owners, got)
		}
		primaries[owners[0]]++
	}
	for _, n := range nodes {
		if primaries[n] == 0 {
			t.Errorf("node %s owns no sources (distribution %v)", n, primaries)
		}
	}
	if r1.owners("anything", 5)[0] == "" || len(r1.owners("anything", 5)) != 3 {
		t.Errorf("asking for more replicas than nodes should clamp to the node count")
	}
}

// TestMembershipStatusTransitions drives the failure detector with a
// fake clock: a member is alive right after a heartbeat, suspect once
// SuspectAfter passes in silence, dead after DeadAfter, and alive again
// after its next beat.
func TestMembershipStatusTransitions(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{DBSources: 1, RecordsPerSource: 3, Seed: 31})
	clk := newFakeClock()
	coord, err := NewNode(transport.NewServer(newTestMiddleware(t, world, true)), Options{
		ID: "coord", Addr: "http://coord",
		SuspectAfter: 2 * time.Second, DeadAfter: 6 * time.Second,
		Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	beat := func() {
		t.Helper()
		body, _ := json.Marshal(heartbeatRequest{Node: "m1", Addr: "http://m1", Healthy: true})
		req := httptest.NewRequest(http.MethodPost, "/cluster/heartbeat", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		coord.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("heartbeat status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	statusOf := func(id string) string {
		t.Helper()
		for _, m := range coord.Members() {
			if m.ID == id {
				return m.Status
			}
		}
		t.Fatalf("member %s not in view %+v", id, coord.Members())
		return ""
	}

	beat()
	if got := statusOf("m1"); got != StatusAlive {
		t.Fatalf("fresh member status = %s, want %s", got, StatusAlive)
	}
	clk.Advance(3 * time.Second)
	if got := statusOf("m1"); got != StatusSuspect {
		t.Fatalf("after 3s silence status = %s, want %s", got, StatusSuspect)
	}
	clk.Advance(4 * time.Second)
	if got := statusOf("m1"); got != StatusDead {
		t.Fatalf("after 7s silence status = %s, want %s", got, StatusDead)
	}
	beat()
	if got := statusOf("m1"); got != StatusAlive {
		t.Fatalf("resurrected member status = %s, want %s", got, StatusAlive)
	}
	if got := statusOf("coord"); got != StatusAlive {
		t.Errorf("coordinator status = %s, want always %s", got, StatusAlive)
	}
}

// TestCatalogReplication applies a coordinator's catalog snapshot to an
// empty member middleware: the member ends up with the same sources and
// mappings, a second apply is a no-op, and a conflicting source
// definition is rejected.
func TestCatalogReplication(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, RecordsPerSource: 3, Seed: 32,
	})
	coordMW := newTestMiddleware(t, world, true)
	cat := snapshotCatalog(coordMW)

	memberMW := newTestMiddleware(t, world, false)
	if got := len(memberMW.Sources().All()); got != 0 {
		t.Fatalf("member starts with %d sources, want 0", got)
	}
	cs := cat.snapshot()
	if err := applyCatalog(memberMW, cs); err != nil {
		t.Fatal(err)
	}
	if got, want := len(memberMW.Sources().All()), len(coordMW.Sources().All()); got != want {
		t.Fatalf("member has %d sources after sync, want %d", got, want)
	}
	if got, want := len(memberMW.Mappings().AllEntries()), len(coordMW.Mappings().AllEntries()); got != want {
		t.Fatalf("member has %d mappings after sync, want %d", got, want)
	}

	// Idempotent: a second apply registers nothing new and does not error.
	if err := applyCatalog(memberMW, cs); err != nil {
		t.Fatalf("second apply should be a no-op: %v", err)
	}
	if got, want := len(memberMW.Mappings().AllEntries()), len(coordMW.Mappings().AllEntries()); got != want {
		t.Fatalf("second apply changed mapping count to %d, want %d", got, want)
	}

	// Conflict: the same source ID bound to a different definition.
	conflicted := cs
	conflicted.Sources = append([]transport.WireSource(nil), cs.Sources...)
	conflicted.Sources[0].URL = "http://somewhere.else/entirely"
	conflicted.Sources[0].Path = "/changed"
	conflicted.Sources[0].DSN = "changed"
	if err := applyCatalog(memberMW, conflicted); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("conflicting source definition applied silently (err = %v)", err)
	}
}

// TestCatalogVersionAdvances checks that recording registrations bumps
// the version the heartbeat protocol advertises.
func TestCatalogVersionAdvances(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{DBSources: 1, RecordsPerSource: 3, Seed: 33})
	cat := snapshotCatalog(newTestMiddleware(t, world, true))
	v0 := cat.version()
	cat.recordSource(transport.WireSource{ID: "late-src", Kind: "xml", URL: "http://x"})
	cat.recordMapping(transport.WireMapping{Attribute: "product", Source: "late-src", Code: "//p"})
	if got := cat.version(); got != v0+2 {
		t.Fatalf("version after two registrations = %d, want %d", got, v0+2)
	}
	cs := cat.snapshot()
	if cs.Sources[len(cs.Sources)-1].ID != "late-src" {
		t.Errorf("snapshot missing the recorded source")
	}
}

// TestOrderByLiveness checks dispatch ordering: alive owners first,
// then suspect, then dead, preserving ring order within each class.
func TestOrderByLiveness(t *testing.T) {
	status := map[string]string{"a": StatusDead, "b": StatusAlive, "c": StatusSuspect, "d": StatusAlive}
	got := orderByLiveness([]string{"a", "b", "c", "d"}, status)
	want := []string{"b", "d", "c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("orderByLiveness = %v, want %v", got, want)
		}
	}
}

// TestWireRoundTrip pushes a result set through toWire/fromWire and
// checks the error envelope strings survive byte-for-byte — the
// property the cluster's byte-identity guarantee rests on.
func TestWireRoundTrip(t *testing.T) {
	rs := &extract.ResultSet{
		Fragments: []extract.Fragment{{
			AttributeID: "product", SourceID: "db-0",
			Values: []string{"Seiko Dive 200"}, Degraded: true, Stale: 3 * time.Second,
		}},
		Errors: []extract.SourceError{{
			SourceID: "web-0", AttributeID: "price",
			Err: extract.Permanent(fmt.Errorf("rule compile failed")),
		}},
		Degraded: []extract.Degradation{{
			SourceID: "web-0", AttributeID: "price", Stale: time.Minute,
			Err: fmt.Errorf("partner offline"),
		}},
	}
	rs.Stats.SourcesContacted = 2
	rs.Stats.ValuesExtracted = 1

	got := fromWire(toWire(rs))
	if len(got.Fragments) != 1 || got.Fragments[0].Values[0] != "Seiko Dive 200" ||
		!got.Fragments[0].Degraded || got.Fragments[0].Stale != 3*time.Second {
		t.Fatalf("fragment did not survive the wire: %+v", got.Fragments)
	}
	if got.Errors[0].Error() != rs.Errors[0].Error() {
		t.Fatalf("error string changed across the wire:\n  pre  %q\n  post %q", rs.Errors[0].Error(), got.Errors[0].Error())
	}
	if !extract.IsPermanent(got.Errors[0].Err) {
		t.Error("permanent marker lost across the wire")
	}
	if got.Degraded[0].Err.Error() != "partner offline" || got.Degraded[0].Stale != time.Minute {
		t.Fatalf("degradation did not survive the wire: %+v", got.Degraded[0])
	}
	if got.Stats.SourcesContacted != 2 || got.Stats.ValuesExtracted != 1 {
		t.Errorf("stats did not survive the wire: %+v", got.Stats)
	}
}
