package cluster

// catalog.go replicates the coordinator's source/mapping catalog to
// every member. The coordinator holds the authoritative copy behind a
// version counter: each registration bumps the version, heartbeats
// advertise it, and a member that is behind pulls the full catalog and
// applies it idempotently. Because members apply registrations through
// the middleware facade, every sync also runs InvalidateCache — the
// propagation path for cache coherence across the fleet.

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/transport"
)

// catalogState is the replicated catalog: the wire forms of every
// source, mapping, and class key, behind a version counter.
type catalogState struct {
	Version   uint64                  `json:"version"`
	Sources   []transport.WireSource  `json:"sources"`
	Mappings  []transport.WireMapping `json:"mappings"`
	ClassKeys map[string]string       `json:"classKeys,omitempty"`
}

// catalog is the coordinator's authoritative, mutex-guarded copy.
type catalog struct {
	mu    sync.Mutex
	state catalogState
}

// snapshotCatalog seeds a catalog from a middleware's current
// registrations at version 1.
func snapshotCatalog(mw *core.Middleware) *catalog {
	c := &catalog{}
	c.state.Version = 1
	for _, def := range mw.Sources().All() {
		c.state.Sources = append(c.state.Sources, transport.FromDefinition(def))
	}
	for _, e := range mw.Mappings().AllEntries() {
		c.state.Mappings = append(c.state.Mappings, transport.FromEntry(e))
	}
	c.state.ClassKeys = mw.Mappings().ClassKeys()
	return c
}

// snapshot copies the current state.
func (c *catalog) snapshot() catalogState {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.state
	s.Sources = append([]transport.WireSource(nil), c.state.Sources...)
	s.Mappings = append([]transport.WireMapping(nil), c.state.Mappings...)
	s.ClassKeys = make(map[string]string, len(c.state.ClassKeys))
	for k, v := range c.state.ClassKeys {
		s.ClassKeys[k] = v
	}
	return s
}

// version returns the current catalog version.
func (c *catalog) version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.Version
}

// recordSource appends a registered source and bumps the version.
func (c *catalog) recordSource(ws transport.WireSource) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state.Sources = append(c.state.Sources, ws)
	c.state.Version++
	return c.state.Version
}

// recordMapping appends a registered mapping and bumps the version.
func (c *catalog) recordMapping(wm transport.WireMapping) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state.Mappings = append(c.state.Mappings, wm)
	c.state.Version++
	return c.state.Version
}

// applyCatalog brings a member middleware up to the given catalog
// state, idempotently: sources and mappings the middleware already
// holds are skipped, new ones are registered through the facade (which
// invalidates the member's caches), and a source registered under the
// same ID with a different definition is a conflict — replicas must
// agree on what a source is.
func applyCatalog(mw *core.Middleware, cs catalogState) error {
	haveSources := make(map[string]transport.WireSource)
	for _, def := range mw.Sources().All() {
		haveSources[def.ID] = transport.FromDefinition(def)
	}
	for _, ws := range cs.Sources {
		if have, ok := haveSources[ws.ID]; ok {
			if !wireSourceEqual(have, ws) {
				return fmt.Errorf("cluster: catalog conflict: source %q differs from the replicated definition", ws.ID)
			}
			continue
		}
		def, err := ws.ToDefinition()
		if err != nil {
			return fmt.Errorf("cluster: applying catalog: %w", err)
		}
		if err := mw.RegisterSource(def); err != nil {
			return fmt.Errorf("cluster: applying catalog: %w", err)
		}
	}
	// Mappings are keyed by their identity fields only: the repository
	// defaults language and scenario at registration, so the registered
	// entry's wire form can differ from the form that was POSTed even
	// though both describe the same rule.
	haveMappings := make(map[string]bool)
	for _, e := range mw.Mappings().AllEntries() {
		haveMappings[mappingKey(transport.FromEntry(e))] = true
	}
	for _, wm := range cs.Mappings {
		if haveMappings[mappingKey(wm)] {
			continue
		}
		entry, err := wm.ToEntry()
		if err != nil {
			return fmt.Errorf("cluster: applying catalog: %w", err)
		}
		if err := mw.RegisterMapping(entry); err != nil {
			return fmt.Errorf("cluster: applying catalog: %w", err)
		}
	}
	for class, attr := range cs.ClassKeys {
		if mw.Mappings().ClassKey(class) == attr {
			continue
		}
		if err := mw.SetClassKey(class, attr); err != nil {
			return fmt.Errorf("cluster: applying catalog: %w", err)
		}
	}
	return nil
}

// mappingKey identifies a mapping by the fields the caller supplies
// (language and scenario are repository-defaulted, so they stay out of
// the identity).
func mappingKey(wm transport.WireMapping) string {
	return wm.Attribute + "\x00" + wm.Source + "\x00" + wm.Code + "\x00" + wm.Column + "\x00" + wm.Transform
}

// wireSourceEqual compares the scalar fields and props of two wire
// sources.
func wireSourceEqual(a, b transport.WireSource) bool {
	if a.ID != b.ID || a.Kind != b.Kind || a.URL != b.URL || a.Path != b.Path || a.DSN != b.DSN {
		return false
	}
	if len(a.Props) != len(b.Props) {
		return false
	}
	for k, v := range a.Props {
		if b.Props[k] != v {
			return false
		}
	}
	return true
}
