package integration

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/faultinject"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/workload"
)

// TestFederatedQuerySingleSpanTree runs a traced query against a remote
// S2S endpoint and checks that the local client span and the server's
// whole pipeline — down to the per-source extraction spans — form one
// connected tree under a single trace ID.
func TestFederatedQuerySingleSpanTree(t *testing.T) {
	mw, _ := build(t, workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 5, Seed: 71,
	}, extract.Options{})
	srv := httptest.NewServer(transport.NewServer(mw))
	defer srv.Close()
	client := transport.NewClient(srv.URL, nil)

	tracer := obs.NewTracer(4)
	ctx, root := tracer.StartTrace(context.Background(), "federated_query")
	resp, err := client.QueryTraced(ctx, "SELECT product", "json")
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	if resp.Trace == nil {
		t.Fatal("no trace returned by the server")
	}
	if len(root.Children) != 1 || root.Children[0] != resp.Trace {
		t.Fatal("server trace not grafted under the local span")
	}
	remote := resp.Trace
	if remote.Name != "http_query" {
		t.Errorf("server root span = %q, want http_query", remote.Name)
	}
	if remote.TraceID != root.TraceID {
		t.Errorf("server trace id = %q, client trace id = %q — not one trace",
			remote.TraceID, root.TraceID)
	}
	if remote.ParentID != root.ID {
		t.Errorf("server root parent = %q, want client span %q", remote.ParentID, root.ID)
	}

	// Every span in the grafted tree shares the trace ID, and every
	// child's parent pointer is consistent with its position.
	names := map[string]int{}
	var verify func(s *obs.Span)
	verify = func(s *obs.Span) {
		if s.TraceID != root.TraceID {
			t.Errorf("span %s has trace id %q, want %q", s.Name, s.TraceID, root.TraceID)
		}
		names[s.Name]++
		for _, c := range s.Children {
			if c.ParentID != s.ID {
				t.Errorf("span %s has parent %q, want %q (its position in the tree)",
					c.Name, c.ParentID, s.ID)
			}
			verify(c)
		}
	}
	verify(root)

	for _, stage := range []string{"query", "parse_plan", "extract", "extraction_schema", "generate", "serialize"} {
		if names[stage] != 1 {
			t.Errorf("stage span %q appears %d times, want 1", stage, names[stage])
		}
	}
	sources := 0
	for name := range names {
		if strings.HasPrefix(name, "source:") {
			sources++
		}
	}
	if sources != 4 {
		t.Errorf("per-source spans = %d, want 4", sources)
	}

	// Stage durations nest inside the query span's latency.
	var query *obs.Span
	remote.Walk(func(s *obs.Span) {
		if s.Name == "query" {
			query = s
		}
	})
	var stageSum time.Duration
	for _, c := range query.Children {
		if c.Duration < 0 {
			t.Errorf("stage %s has negative duration", c.Name)
		}
		stageSum += c.Duration
	}
	if stageSum == 0 || stageSum > query.Duration {
		t.Errorf("stage durations sum to %v, query span took %v", stageSum, query.Duration)
	}
}

// TestEmittedMetricsMatchDeclaredAndDocumented drives a middleware
// through a scenario that touches every metric family — successful
// extraction from all four source kinds, cache hits on a repeated query,
// retries and a breaker trip on a dead source, a streamed query, and a
// 3-node cluster serving a hedged scatter-gather query with a
// version-gated catalog sync — and then checks that
// every family some registry actually holds is declared in internal/obs
// and documented in docs/OBSERVABILITY.md.
func TestEmittedMetricsMatchDeclaredAndDocumented(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 5, Seed: 72,
	})
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: extract.FromCatalog(world.Catalog),
		Extract: extract.Options{
			CacheTTL: time.Hour,
			Retries:  1,
			Breaker:  extract.BreakerOptions{Threshold: 1, Cooldown: time.Hour},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	// A dead source: fails (with a retry), trips its breaker on the first
	// query, and is skipped as breaker_open on the second.
	if err := mw.RegisterSource(datasource.Definition{
		ID: "dead", Kind: datasource.KindWeb, URL: "http://dead.example/x",
	}); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "dead",
		Rule: mapping.Rule{Code: `var brand = Text(GetURL("http://dead.example/x"))`},
	}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := mw.Query(ctx, "SELECT product"); err != nil {
			t.Fatal(err)
		}
	}
	// A constrained query exercises the query planner's pushdown counters.
	if _, err := mw.Query(ctx, "SELECT product WHERE brand = 'Seiko'"); err != nil {
		t.Fatal(err)
	}
	// A streamed query exercises the streaming pipeline's batch counter.
	if _, _, err := mw.QueryToStream(ctx, io.Discard, "SELECT product", instance.FormatJSON); err != nil {
		t.Fatal(err)
	}
	// A class key makes records mergeable across sources, which blocks
	// predicate pushdown; the planner instead narrows sources missing the
	// constrained attribute with a cross-source semi-join, whose runtime
	// decisions land in the semijoin counter (planner v3).
	if err := mw.SetClassKey("watch", "thing.product.model"); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Query(ctx, "SELECT product WHERE water_resistance >= 100"); err != nil {
		t.Fatal(err)
	}
	var semijoins uint64
	for _, outcome := range obs.SemiJoinOutcomes {
		semijoins += mw.Metrics().Counter(obs.MetricPlannerSemiJoin, obs.Labels{"outcome": outcome}).Value()
	}
	if semijoins == 0 {
		t.Error("keyed constrained query made no semi-join decisions")
	}

	// The cluster families need a real fleet: stand up the 3-node rig
	// with one slow member so a hedge fires, then land a registration on
	// the coordinator so a member's next beat forces a catalog sync.
	spec := workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 6, Seed: 82,
	}
	slowWorld := workload.MustGenerate(spec)
	slow := faultinject.Plan{}
	for _, def := range slowWorld.Definitions {
		slow[faultinject.Key(def)] = faultinject.Fault{AddLatency: 300 * time.Millisecond}
	}
	rig := startClusterRig(t, spec,
		cluster.Options{HedgeDelay: 20 * time.Millisecond},
		map[string]faultinject.Plan{"n2": slow})
	cr, err := rig.queryCluster("SELECT product", "json")
	if err != nil {
		t.Fatal(err)
	}
	if cr.Cluster.Hedged == 0 {
		t.Fatalf("cluster scenario fired no hedges: %+v", cr.Cluster)
	}
	lateBody, err := json.Marshal(transport.FromDefinition(datasource.Definition{
		ID: "obs_late", Kind: datasource.KindXML, Path: "obs_late.xml",
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(rig.servers["n1"].URL+"/sources", "application/json", bytes.NewReader(lateBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("registering the late source: status %d", resp.StatusCode)
	}
	if err := rig.nodes["n2"].HeartbeatOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if v := rig.mws["n2"].Metrics().Counter(obs.MetricClusterCatalogSyncs, nil).Value(); v == 0 {
		t.Error("member heartbeat against a newer catalog version forced no sync")
	}

	declared := map[string]bool{}
	for _, name := range obs.MetricNames() {
		declared[name] = true
	}
	docBytes, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(docBytes)

	emitted := map[string]bool{}
	for _, name := range mw.Metrics().Names() {
		emitted[name] = true
	}
	for _, id := range []string{"n1", "n2", "n3"} {
		for _, name := range rig.mws[id].Metrics().Names() {
			emitted[name] = true
		}
	}
	for name := range emitted {
		if !declared[name] {
			t.Errorf("registry emits undeclared metric %s", name)
		}
		if !strings.Contains(doc, name) {
			t.Errorf("emitted metric %s is not documented in docs/OBSERVABILITY.md", name)
		}
	}
	// The scenario above must exercise the full declared surface; if a
	// family stops being emitted, either the code or the declaration (and
	// this scenario) has drifted.
	if len(emitted) != len(declared) {
		var names []string
		for name := range emitted {
			names = append(names, name)
		}
		sort.Strings(names)
		t.Errorf("emitted %d of %d declared families: %v", len(emitted), len(declared), names)
	}

	hits := mw.Metrics().Counter(obs.MetricCacheLookups, obs.Labels{"outcome": "hit"}).Value()
	if hits == 0 {
		t.Error("repeated query produced no cache hits")
	}
	if v := mw.Metrics().Counter(obs.MetricBreakerTrips, obs.Labels{"source": "dead"}).Value(); v != 1 {
		t.Errorf("breaker trips for dead source = %d, want 1", v)
	}
	// All four queries after the tripping one (repeat, constrained,
	// streamed, keyed) are skipped as breaker_open.
	if v := mw.Metrics().Counter(obs.MetricSourceExtractTotal, obs.Labels{"source": "dead", "outcome": "breaker_open"}).Value(); v != 4 {
		t.Errorf("breaker_open attempts for dead source = %d, want 4", v)
	}
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestOpsEndpointsServeMetricsAndTraces checks the HTTP ops surface: a
// served query shows up in /metrics with per-source labels and in
// /trace/last as a JSON span tree.
func TestOpsEndpointsServeMetricsAndTraces(t *testing.T) {
	mw, _ := build(t, workload.Spec{DBSources: 2, RecordsPerSource: 5, Seed: 73}, extract.Options{})
	srv := httptest.NewServer(transport.NewServer(mw))
	defer srv.Close()
	client := transport.NewClient(srv.URL, nil)
	if _, err := client.Query(context.Background(), "SELECT product", "json"); err != nil {
		t.Fatal(err)
	}

	metrics := httpGetBody(t, srv.URL+"/metrics")
	for _, want := range []string{
		`s2s_query_total{outcome="ok"} 1`,
		`s2s_source_extract_total{outcome="ok",source="db_000"} 1`,
		"s2s_query_duration_seconds_bucket",
		"# TYPE s2s_stage_duration_seconds histogram",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	traces := httpGetBody(t, srv.URL+"/trace/last?n=1")
	for _, want := range []string{`"name":"http_query"`, `"name":"source:db_000"`, `"traceId"`} {
		if !strings.Contains(traces, want) {
			t.Errorf("/trace/last missing %q:\n%s", want, traces)
		}
	}
}
