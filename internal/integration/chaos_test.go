package integration

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/faultinject"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/workload"
)

// The chaos suite (run by `make chaos`) drives full queries through the
// seeded fault-injection harness and asserts the recovery invariants:
// no total query failure while an alternate source covers each
// attribute, end-to-end latency bounded by the deadline budget, and
// retry/breaker/outcome counters matching the injected plan exactly.
// Everything derives from fixed seeds, so failures reproduce.

const chaosSeed = 1337

// chaosWorld generates a world and wires its backends through an
// injector running the given plan. Plan targets are backend addresses;
// use chaosKey to resolve a source ID to its target.
func chaosWorld(t *testing.T, spec workload.Spec, plan faultinject.Plan, opts extract.Options) (*core.Middleware, *workload.World, *faultinject.Injector) {
	t.Helper()
	world := workload.MustGenerate(spec)
	inj := faultinject.New(chaosSeed, plan)
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: inj.WrapBackends(extract.FromCatalog(world.Catalog)),
		Extract:  opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	return mw, world, inj
}

// chaosKey returns the fault-injection target for a generated source.
func chaosKey(t *testing.T, world *workload.World, sourceID string) string {
	t.Helper()
	for _, def := range world.Definitions {
		if def.ID == sourceID {
			return faultinject.Key(def)
		}
	}
	t.Fatalf("no definition for source %s", sourceID)
	return ""
}

// stopwatch returns a function reporting the real time elapsed since
// the call. The budget assertions bound *actual* waiting — that hung
// sources cannot pin a query past its deadline — so they must read the
// wall clock; the determinism rule governs fault generation, which
// stays fully seeded.
func stopwatch() func() time.Duration {
	//lint:ignore determinism real-elapsed-time guard: asserts the query budget bounds wall-clock latency, which only the wall clock can witness
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

func counter(mw *core.Middleware, name string, labels obs.Labels) uint64 {
	return mw.Metrics().Counter(name, labels).Value()
}

// TestChaosReplicaFailoverKeepsAnswering kills one of two sources that
// map the product attributes and verifies the invariant: the query
// still answers from the healthy source, and the dead source's error is
// marked failover because every attribute it served was still covered.
func TestChaosReplicaFailoverKeepsAnswering(t *testing.T) {
	spec := workload.Spec{XMLSources: 1, WebSources: 1, RecordsPerSource: 8, Seed: 71}
	probe := workload.MustGenerate(spec) // throwaway copy just to resolve the target key
	target := chaosKey(t, probe, "web_000")

	mw, world, _ := chaosWorld(t, spec,
		faultinject.Plan{target: {Permanent: true}},
		extract.Options{Retries: 2, RetryBackoff: -1})

	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatalf("query must not fail totally with a healthy replica: %v", err)
	}
	healthy := world.CountMatching(func(r workload.Record) bool {
		return strings.HasPrefix(r.SourceID, "xml_")
	})
	if len(res.Matched) != healthy {
		t.Errorf("matched = %d, want %d from the healthy source", len(res.Matched), healthy)
	}
	if len(res.Errors) == 0 {
		t.Fatal("killed source reported no errors")
	}
	for _, e := range res.Errors {
		if e.SourceID != "web_000" {
			t.Errorf("error attributed to %s, want web_000", e.SourceID)
		}
		if !e.Failover {
			t.Errorf("killed source's attributes were all covered; error not marked failover: %v", e)
		}
		if !extract.IsPermanent(e.Err) {
			t.Errorf("injected permanent fault lost its classification: %v", e.Err)
		}
	}
	// One failover per failed rule: every error was covered elsewhere.
	if got := counter(mw, obs.MetricSourceExtractTotal, obs.Labels{"source": "web_000", "outcome": obs.OutcomeFailover}); got != uint64(len(res.Errors)) {
		t.Errorf("failover counter = %v, want %d (one per failed rule)", got, len(res.Errors))
	}
	// Permanent failures must fail fast: zero retries despite Retries: 2.
	if got := counter(mw, obs.MetricSourceRetries, obs.Labels{"source": "web_000"}); got != 0 {
		t.Errorf("permanent fault consumed %v retries, want 0", got)
	}
}

// TestChaosBudgetBoundsLatencyUnderHangs hangs every web source and
// checks the query-wide deadline budget bounds end-to-end latency: the
// healthy source still answers and the hung sources surface as errors
// well before their own 10s default timeout.
func TestChaosBudgetBoundsLatencyUnderHangs(t *testing.T) {
	spec := workload.Spec{XMLSources: 1, WebSources: 2, RecordsPerSource: 5, Seed: 72}
	probe := workload.MustGenerate(spec)
	plan := faultinject.Plan{
		chaosKey(t, probe, "web_000"): {Hang: true},
		chaosKey(t, probe, "web_001"): {Hang: true},
	}
	mw, world, _ := chaosWorld(t, spec, plan, extract.Options{
		QueryBudget:  300 * time.Millisecond,
		RetryBackoff: -1,
	})

	stop := stopwatch()
	res, err := mw.Query(context.Background(), "SELECT product")
	elapsed := stop()
	if err != nil {
		t.Fatalf("query must degrade, not fail: %v", err)
	}
	// Generous bound for race-detector and scheduler noise; without the
	// budget the hung fetches would pin the query for the full 10s
	// per-source timeout.
	if elapsed > 2*time.Second {
		t.Errorf("query took %v, budget was 300ms", elapsed)
	}
	healthy := world.CountMatching(func(r workload.Record) bool {
		return strings.HasPrefix(r.SourceID, "xml_")
	})
	if len(res.Matched) != healthy {
		t.Errorf("matched = %d, want %d from the healthy source", len(res.Matched), healthy)
	}
	if len(res.Errors) == 0 {
		t.Error("hung sources produced no errors")
	}
	for _, e := range res.Errors {
		if !strings.HasPrefix(e.SourceID, "web_") {
			t.Errorf("error attributed to healthy source: %v", e)
		}
	}
}

// TestChaosCountersMatchInjectedPlan injects an exact failure count and
// checks the recovery counters line up with it: FailFirst: 2 under a
// budget of 3 retries must produce exactly 2 retries, one ok outcome,
// no exhaustion, and no data loss — twice, identically, from the same
// seed.
func TestChaosCountersMatchInjectedPlan(t *testing.T) {
	spec := workload.Spec{XMLSources: 1, RecordsPerSource: 6, Seed: 73}

	run := func() (matched int, retries, ok, exhausted uint64, calls int) {
		probe := workload.MustGenerate(spec)
		target := chaosKey(t, probe, "xml_000")
		mw, _, inj := chaosWorld(t, spec,
			faultinject.Plan{target: {FailFirst: 2}},
			extract.Options{Retries: 3, RetryBackoff: -1})
		res, err := mw.Query(context.Background(), "SELECT product")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Errors) > 0 {
			t.Fatalf("retries should have absorbed the plan's 2 failures: %v", res.Errors)
		}
		return len(res.Matched),
			counter(mw, obs.MetricSourceRetries, obs.Labels{"source": "xml_000"}),
			counter(mw, obs.MetricSourceExtractTotal, obs.Labels{"source": "xml_000", "outcome": obs.OutcomeOK}),
			counter(mw, obs.MetricSourceExtractTotal, obs.Labels{"source": "xml_000", "outcome": obs.OutcomeRetryExhausted}),
			inj.Calls(target)
	}

	matched, retries, ok, exhausted, calls := run()
	if matched != 6 {
		t.Errorf("matched = %d, want 6 (no data loss)", matched)
	}
	// The plan failed exactly 2 calls; every failure costs exactly one
	// retry under a sufficient budget.
	if retries != 2 {
		t.Errorf("retries = %v, want exactly the 2 injected failures", retries)
	}
	if ok != 1 {
		t.Errorf("ok outcome = %v, want 1", ok)
	}
	if exhausted != 0 {
		t.Errorf("retry_exhausted = %v, want 0", exhausted)
	}

	matched2, retries2, ok2, exhausted2, calls2 := run()
	if matched2 != matched || retries2 != retries || ok2 != ok || exhausted2 != exhausted || calls2 != calls {
		t.Errorf("chaos run not reproducible from seed: (%d,%v,%v,%v,%d) vs (%d,%v,%v,%v,%d)",
			matched, retries, ok, exhausted, calls, matched2, retries2, ok2, exhausted2, calls2)
	}
}

// chaosSemiJoinWorld wires a semi-join world (small keyed directory,
// large narrowable detail sources) through a seeded injector, with the
// watch class keyed on model so narrowing can fire.
func chaosSemiJoinWorld(t *testing.T, spec workload.SemiJoinSpec, plan faultinject.Plan, opts extract.Options) *core.Middleware {
	t.Helper()
	world := workload.MustGenerateSemiJoin(spec)
	inj := faultinject.New(chaosSeed, plan)
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: inj.WrapBackends(extract.FromCatalog(world.Catalog)),
		Extract:  opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	if err := mw.SetClassKey("watch", "thing.product.model"); err != nil {
		t.Fatal(err)
	}
	return mw
}

// TestChaosSemiJoinFallbackMatchesPlain kills semi-join participants —
// first the directory that feeds the seed, then a narrowed detail
// source — and asserts the invariant that makes narrowing safe to ship:
// under every fault plan, the narrowed pipeline's answer is
// byte-identical to the unnarrowed pipeline's, errors included. A dead
// seed source must degrade the optimization, never the answer.
func TestChaosSemiJoinFallbackMatchesPlain(t *testing.T) {
	spec := workload.SemiJoinSpec{DirectoryRecords: 4, DetailSources: 2, DetailRecords: 25, Seed: 75}
	const query = "SELECT product WHERE water_resistance >= 100"

	cases := []struct {
		name string
		plan faultinject.Plan
	}{
		{"healthy", nil},
		// The directory is the only wave-one source: killing it empties
		// the seed and its errors must surface identically in both runs.
		{"dead seed source", faultinject.Plan{"directory": {Permanent: true}}},
		// A dead narrowed source fails in wave two; the plain run fails
		// the same rules in its single wave.
		{"dead narrowed source", faultinject.Plan{"detail-000": {Permanent: true}}},
		// Transient failures exercise the retry path on narrowed
		// (ephemeral) rules.
		{"flapping narrowed source", faultinject.Plan{"detail-001": {FailFirst: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Sequential extraction keeps the injector's per-call counters
			// (embedded in its error strings) identical across both runs;
			// concurrency would assign them by goroutine scheduling.
			opts := extract.Options{Retries: 2, RetryBackoff: -1, Parallelism: 1, RuleParallelism: 1}
			narrowedMW := chaosSemiJoinWorld(t, spec, tc.plan, opts)
			plainOpts := opts
			plainOpts.DisableSemiJoin = true
			plainMW := chaosSemiJoinWorld(t, spec, tc.plan, plainOpts)

			ctx := context.Background()
			narrowed, nerr := narrowedMW.QueryString(ctx, query, instance.FormatJSON)
			plain, perr := plainMW.QueryString(ctx, query, instance.FormatJSON)
			if (nerr == nil) != (perr == nil) || (nerr != nil && nerr.Error() != perr.Error()) {
				t.Fatalf("error divergence: narrowed=%v plain=%v", nerr, perr)
			}
			if narrowed != plain {
				t.Errorf("narrowed output diverges from plain under %q:\nnarrowed: %s\nplain:    %s", tc.name, narrowed, plain)
			}

			nres, err := narrowedMW.Query(ctx, query)
			if err != nil {
				t.Fatal(err)
			}
			pres, err := plainMW.Query(ctx, query)
			if err != nil {
				t.Fatal(err)
			}
			if len(nres.Errors) != len(pres.Errors) {
				t.Fatalf("error counts diverge: narrowed=%v plain=%v", nres.Errors, pres.Errors)
			}
			if len(nres.Matched) != len(pres.Matched) {
				t.Errorf("matched diverge: narrowed=%d plain=%d", len(nres.Matched), len(pres.Matched))
			}
		})
	}
}

// TestChaosServeStaleKeepsDataFlowing warms the rule cache, kills the
// only source, and verifies the degradation ladder: answers keep
// flowing from expired cache entries, marked degraded with their
// staleness age, with no errors surfaced.
func TestChaosServeStaleKeepsDataFlowing(t *testing.T) {
	spec := workload.Spec{XMLSources: 1, RecordsPerSource: 5, Seed: 74}
	probe := workload.MustGenerate(spec)
	target := chaosKey(t, probe, "xml_000")

	mw, _, inj := chaosWorld(t, spec, nil, extract.Options{
		CacheTTL:     25 * time.Millisecond,
		RetryBackoff: -1,
	})
	ctx := context.Background()

	warm, err := mw.Query(ctx, "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Errors) > 0 || len(warm.Matched) != 5 {
		t.Fatalf("warm query: matched=%d errors=%v", len(warm.Matched), warm.Errors)
	}

	time.Sleep(60 * time.Millisecond) // let the cache expire
	inj.Set(target, faultinject.Fault{Permanent: true})

	res, err := mw.Query(ctx, "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 5 {
		t.Errorf("stale serve matched %d, want 5 (stale answers beat no answers)", len(res.Matched))
	}
	if len(res.Errors) > 0 {
		t.Errorf("serve-stale should absorb the failure, got errors: %v", res.Errors)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("stale-served result carries no degradation records")
	}
	for _, d := range res.Degraded {
		if d.SourceID != "xml_000" {
			t.Errorf("degradation attributed to %s, want xml_000", d.SourceID)
		}
		if d.Stale < 60*time.Millisecond {
			t.Errorf("staleness age = %v, want >= the 60ms the cache sat expired", d.Stale)
		}
	}
	if got := counter(mw, obs.MetricSourceExtractTotal, obs.Labels{"source": "xml_000", "outcome": obs.OutcomeDegradedStale}); got != 1 {
		t.Errorf("degraded_stale counter = %v, want 1", got)
	}
}
