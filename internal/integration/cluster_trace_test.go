package integration

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestClusterExtractFederatedTrace checks that scatter-gather
// sub-requests federate tracing: a member serving /cluster/extract
// joins the coordinator's trace (via the trace headers the coordinator
// forwards on the sub-request) instead of starting its own, so the
// whole scattered query shares one trace ID and each member root hangs
// off a span of the coordinator's tree.
func TestClusterExtractFederatedTrace(t *testing.T) {
	rig := startClusterRig(t, workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 5, Seed: 91,
	}, cluster.Options{}, nil)

	if _, err := rig.queryCluster("SELECT product", "json"); err != nil {
		t.Fatal(err)
	}

	coord := rig.mws["n1"].Tracer().Last(1)
	if len(coord) == 0 {
		t.Fatal("coordinator recorded no trace")
	}
	root := coord[0]
	if root.Name != "http_query" {
		t.Fatalf("coordinator root span = %q, want http_query", root.Name)
	}
	coordSpans := map[string]bool{}
	root.Walk(func(s *obs.Span) { coordSpans[s.ID] = true })

	federated := 0
	for _, id := range []string{"n2", "n3"} {
		for _, tr := range rig.mws[id].Tracer().Last(16) {
			if tr.Name != "cluster_extract" {
				continue
			}
			if tr.TraceID != root.TraceID {
				t.Errorf("member %s cluster_extract trace id = %q, coordinator trace id = %q — not one trace",
					id, tr.TraceID, root.TraceID)
				continue
			}
			if !coordSpans[tr.ParentID] {
				t.Errorf("member %s cluster_extract parent %q is not a span of the coordinator's tree",
					id, tr.ParentID)
			}
			sources := 0
			tr.Walk(func(s *obs.Span) {
				if s.TraceID != root.TraceID {
					t.Errorf("member %s span %q has trace id %q, want %q", id, s.Name, s.TraceID, root.TraceID)
				}
				if len(s.Name) > 7 && s.Name[:7] == "source:" {
					sources++
				}
			})
			if sources == 0 {
				t.Errorf("member %s cluster_extract trace has no per-source spans", id)
			}
			federated++
		}
	}
	if federated == 0 {
		t.Fatal("no member recorded a cluster_extract sub-request trace")
	}
}
