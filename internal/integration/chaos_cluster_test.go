package integration

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/faultinject"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/workload"
)

// The cluster chaos suite (run by `make chaos-cluster`, included in
// `make chaos`) stands up a real 3-node in-process cluster — one
// coordinator, two members joined over HTTP — and attacks it: a slow
// node, a node killed cleanly, a node killed mid-request, both owners
// of a partition gone, and catalog registrations racing live queries.
// The invariant under every fault: the answer a client reads from
// /cluster/query is byte-identical to a single node's answer over the
// same world, or explicitly marked degraded when data was truly lost.

// clusterClock is a manual clock for the cluster's Now seam; the
// membership tests advance it instead of sleeping.
type clusterClock struct {
	mu  sync.Mutex
	now time.Time
}

func newClusterClock() *clusterClock {
	return &clusterClock{now: time.Unix(1700000000, 0)}
}

func (c *clusterClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clusterClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// killSwitch fronts a member node; armed, it hijacks /cluster/extract
// connections and closes them without a response — the node dying
// mid-request, after accepting the sub-query.
type killSwitch struct {
	h     http.Handler
	armed atomic.Bool
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.armed.Load() && r.URL.Path == "/cluster/extract" {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
	}
	k.h.ServeHTTP(w, r)
}

// clusterRig is a live 3-node cluster (coordinator n1, members n2 and
// n3) plus an independent single-node baseline over the same world.
type clusterRig struct {
	t       *testing.T
	world   *workload.World
	clk     *clusterClock
	coordMW *core.Middleware
	mws     map[string]*core.Middleware
	nodes   map[string]*cluster.Node
	servers map[string]*httptest.Server
	kills   map[string]*killSwitch

	baselineMW *core.Middleware
	baseline   *transport.Client
}

// startClusterRig builds the cluster. memberPlans optionally wires a
// member's backends through a seeded fault injector.
func startClusterRig(t *testing.T, spec workload.Spec, coordOpts cluster.Options, memberPlans map[string]faultinject.Plan) *clusterRig {
	t.Helper()
	rig := &clusterRig{
		t:       t,
		world:   workload.MustGenerate(spec),
		clk:     newClusterClock(),
		mws:     map[string]*core.Middleware{},
		nodes:   map[string]*cluster.Node{},
		servers: map[string]*httptest.Server{},
		kills:   map[string]*killSwitch{},
	}

	newMW := func(apply bool, plan faultinject.Plan) *core.Middleware {
		t.Helper()
		backends := extract.FromCatalog(rig.world.Catalog)
		if plan != nil {
			backends = faultinject.New(chaosSeed, plan).WrapBackends(backends)
		}
		mw, err := core.New(core.Config{Ontology: rig.world.Ontology, Backends: backends})
		if err != nil {
			t.Fatal(err)
		}
		if apply {
			if err := rig.world.Apply(mw); err != nil {
				t.Fatal(err)
			}
		}
		return mw
	}

	// Independent single-node baseline: the byte-identity oracle.
	rig.baselineMW = newMW(true, nil)
	baseSrv := httptest.NewServer(transport.NewServer(rig.baselineMW))
	t.Cleanup(baseSrv.Close)
	rig.baseline = transport.NewClient(baseSrv.URL, nil)

	// Coordinator n1.
	rig.coordMW = newMW(true, nil)
	coordOpts.ID = "n1"
	if coordOpts.Now == nil {
		coordOpts.Now = rig.clk.Now
	}
	coord, err := cluster.NewNode(transport.NewServer(rig.coordMW), coordOpts)
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord)
	t.Cleanup(coordSrv.Close)
	coord.SetAddr(coordSrv.URL)
	rig.nodes["n1"], rig.servers["n1"], rig.mws["n1"] = coord, coordSrv, rig.coordMW

	// Members n2 and n3: empty catalogs that replicate on join.
	for _, id := range []string{"n2", "n3"} {
		mw := newMW(false, memberPlans[id])
		node, err := cluster.NewNode(transport.NewServer(mw), cluster.Options{
			ID: id, CoordinatorURL: coordSrv.URL, Now: rig.clk.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		ks := &killSwitch{h: node}
		srv := httptest.NewServer(ks)
		t.Cleanup(srv.Close)
		node.SetAddr(srv.URL)
		if err := node.Join(context.Background()); err != nil {
			t.Fatalf("member %s join: %v", id, err)
		}
		rig.nodes[id], rig.servers[id], rig.mws[id], rig.kills[id] = node, srv, mw, ks
	}
	return rig
}

// queryCluster runs one query through /cluster/query.
func (r *clusterRig) queryCluster(q, format string) (cluster.QueryResponse, error) {
	var out cluster.QueryResponse
	resp, err := http.Get(r.servers["n1"].URL + "/cluster/query?q=" + url.QueryEscape(q) + "&format=" + format)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return out, fmt.Errorf("cluster query status %d: %s", resp.StatusCode, e.Error)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// assertEquivalent asserts the cluster's answer is byte-identical to
// the single-node baseline's and returns it for further assertions.
func (r *clusterRig) assertEquivalent(q, format string) cluster.QueryResponse {
	r.t.Helper()
	cr, err := r.queryCluster(q, format)
	if err != nil {
		r.t.Fatalf("cluster query %q/%s: %v", q, format, err)
	}
	sr, err := r.baseline.Query(context.Background(), q, format)
	if err != nil {
		r.t.Fatalf("baseline query %q/%s: %v", q, format, err)
	}
	if cr.Body != sr.Body {
		r.t.Errorf("cluster body diverges from single-node for %q/%s:\n--- cluster ---\n%s\n--- single ---\n%s", q, format, cr.Body, sr.Body)
	}
	if cr.Matched != sr.Matched || cr.Related != sr.Related {
		r.t.Errorf("counts diverge for %q/%s: cluster %d/%d, single %d/%d",
			q, format, cr.Matched, cr.Related, sr.Matched, sr.Related)
	}
	if fmt.Sprint(cr.Missing) != fmt.Sprint(sr.Missing) {
		r.t.Errorf("missing diverges for %q/%s: cluster %v, single %v", q, format, cr.Missing, sr.Missing)
	}
	if fmt.Sprint(cr.Errors) != fmt.Sprint(sr.Errors) {
		r.t.Errorf("errors diverge for %q/%s:\n cluster %v\n single  %v", q, format, cr.Errors, sr.Errors)
	}
	if fmt.Sprint(cr.Degraded) != fmt.Sprint(sr.Degraded) {
		r.t.Errorf("degradations diverge for %q/%s:\n cluster %v\n single  %v", q, format, cr.Degraded, sr.Degraded)
	}
	return cr
}

// TestChaosClusterByteIdenticalAnswers runs queries across formats on a
// healthy 3-node cluster: every answer must be byte-identical to a
// single node over the same world, with the work actually partitioned.
func TestChaosClusterByteIdenticalAnswers(t *testing.T) {
	rig := startClusterRig(t, workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 6, Seed: 81,
	}, cluster.Options{}, nil)

	for _, q := range []string{"SELECT product", "SELECT product WHERE brand='Seiko'"} {
		for _, format := range []string{"json", "owl", "turtle"} {
			cr := rig.assertEquivalent(q, format)
			if cr.Cluster.Nodes != 3 {
				t.Errorf("dispatch saw %d nodes, want 3", cr.Cluster.Nodes)
			}
			if cr.Cluster.Subqueries < 2 {
				t.Errorf("extraction split into %d subqueries; the partitioner is not spreading work", cr.Cluster.Subqueries)
			}
			if cr.Cluster.Degraded || len(cr.Cluster.LostSources) > 0 {
				t.Errorf("healthy cluster reported degradation: %+v", cr.Cluster)
			}
		}
	}
}

// TestChaosClusterHedgingCutsTailLatency slows every backend of member
// n2 far past the hedge deadline: the coordinator must re-issue n2's
// sub-queries to the replica owners and answer fast — and still
// byte-identically.
func TestChaosClusterHedgingCutsTailLatency(t *testing.T) {
	spec := workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 6, Seed: 82,
	}
	slowWorld := workload.MustGenerate(spec) // throwaway copy to resolve target keys
	slow := faultinject.Plan{}
	for _, def := range slowWorld.Definitions {
		slow[faultinject.Key(def)] = faultinject.Fault{AddLatency: 600 * time.Millisecond}
	}
	rig := startClusterRig(t, spec,
		cluster.Options{HedgeDelay: 40 * time.Millisecond},
		map[string]faultinject.Plan{"n2": slow})

	elapsed := stopwatch()
	cr := rig.assertEquivalent("SELECT product", "json")
	if d := elapsed(); d >= 450*time.Millisecond {
		t.Errorf("hedged query took %v; hedging should beat the 600ms slow node", d)
	}
	if cr.Cluster.Hedged == 0 || cr.Cluster.HedgeWins == 0 {
		t.Errorf("no hedge fired/won against a slow node: %+v", cr.Cluster)
	}
	won := rig.coordMW.Metrics().Counter(obs.MetricClusterHedges, obs.Labels{"outcome": obs.OutcomeHedgeWon}).Value()
	if won == 0 {
		t.Error("hedge-won counter is zero")
	}
}

// TestChaosClusterNodeDeathFailsOver kills member n2 outright. Before
// the failure detector notices, dispatch must fail over from the dead
// primary to the replica; after the detector marks it dead, dispatch
// must route around it — byte-identically both times.
func TestChaosClusterNodeDeathFailsOver(t *testing.T) {
	rig := startClusterRig(t, workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 6, Seed: 83,
	}, cluster.Options{}, nil)

	rig.servers["n2"].Close()

	// Phase 1: n2 still looks alive, so its sub-queries go out, fail at
	// the socket, and fail over to the replica owner.
	cr := rig.assertEquivalent("SELECT product", "json")
	if cr.Cluster.Failovers == 0 {
		t.Errorf("killed primary produced no failovers: %+v", cr.Cluster)
	}
	if cr.Cluster.Degraded || len(cr.Cluster.LostSources) > 0 {
		t.Errorf("replica held the data; nothing should be lost: %+v", cr.Cluster)
	}

	// Phase 2: silence passes DeadAfter; n3 keeps beating. The detector
	// must mark n2 dead and dispatch must prefer live owners.
	rig.clk.Advance(7 * time.Second)
	if err := rig.nodes["n3"].HeartbeatOnce(context.Background()); err != nil {
		t.Fatalf("n3 heartbeat: %v", err)
	}
	status := map[string]string{}
	for _, m := range rig.nodes["n1"].Members() {
		status[m.ID] = m.Status
	}
	if status["n2"] != cluster.StatusDead || status["n3"] != cluster.StatusAlive {
		t.Fatalf("member statuses = %v, want n2 dead and n3 alive", status)
	}
	cr = rig.assertEquivalent("SELECT product", "json")
	if cr.Cluster.Degraded {
		t.Errorf("routing around a dead node must not degrade: %+v", cr.Cluster)
	}
}

// TestChaosClusterNodeKilledMidQuery arms n2's kill switch so it
// accepts each extraction sub-request and then drops the connection
// cold. The coordinator must fail over and answer byte-identically;
// disarmed again (a flapping node), the cluster heals.
func TestChaosClusterNodeKilledMidQuery(t *testing.T) {
	rig := startClusterRig(t, workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 6, Seed: 84,
	}, cluster.Options{}, nil)

	for cycle := 0; cycle < 2; cycle++ {
		rig.kills["n2"].armed.Store(true)
		cr := rig.assertEquivalent("SELECT product", "json")
		if cr.Cluster.Failovers == 0 {
			t.Errorf("cycle %d: mid-query death produced no failovers: %+v", cycle, cr.Cluster)
		}
		if cr.Cluster.Degraded {
			t.Errorf("cycle %d: replica held the data; answer must not degrade: %+v", cycle, cr.Cluster)
		}
		rig.kills["n2"].armed.Store(false)
		if cr := rig.assertEquivalent("SELECT product", "json"); cr.Cluster.Degraded {
			t.Errorf("cycle %d: healed cluster still degraded: %+v", cycle, cr.Cluster)
		}
	}
}

// TestChaosClusterLostPartitionDegradesExplicitly kills both members,
// leaving only the coordinator. Sources whose owner pair was {n2, n3}
// have no surviving owner: the query must still answer with everything
// the coordinator owns, and the lost sources must be reported
// explicitly — never silently dropped.
func TestChaosClusterLostPartitionDegradesExplicitly(t *testing.T) {
	rig := startClusterRig(t, workload.Spec{
		DBSources: 3, XMLSources: 3, WebSources: 3, TextSources: 3,
		RecordsPerSource: 4, Seed: 85,
	}, cluster.Options{}, nil)

	rig.servers["n2"].Close()
	rig.servers["n3"].Close()

	cr, err := rig.queryCluster("SELECT product", "json")
	if err != nil {
		t.Fatalf("query must answer from the surviving node: %v", err)
	}
	if !cr.Cluster.Degraded || len(cr.Cluster.LostSources) == 0 {
		t.Fatalf("both owners of some partition are dead; answer must be marked degraded with lost sources: %+v", cr.Cluster)
	}
	found := false
	for _, e := range cr.Errors {
		if strings.Contains(e, "unavailable") {
			found = true
		}
	}
	if !found {
		t.Errorf("lost sources surfaced no explicit errors: %v", cr.Errors)
	}
	if cr.Matched == 0 {
		t.Error("coordinator-owned sources should still answer the query")
	}
	sr, err := rig.baseline.Query(context.Background(), "SELECT product", "json")
	if err != nil {
		t.Fatal(err)
	}
	if cr.Matched >= sr.Matched {
		t.Errorf("lost partition should cost matches: cluster %d, single %d", cr.Matched, sr.Matched)
	}
}

// TestChaosClusterCatalogRaceConverges registers a new source and its
// mappings on the coordinator while queries are in flight, then checks
// convergence: members pull the new catalog version before serving
// sub-queries against it, and the post-registration cluster answer is
// byte-identical to a single node that registered the same things.
func TestChaosClusterCatalogRaceConverges(t *testing.T) {
	spec := workload.Spec{DBSources: 2, XMLSources: 2, WebSources: 2, RecordsPerSource: 5, Seed: 86}
	world := workload.MustGenerate(spec)
	// Pre-seed the late source's document in the shared catalog (its
	// backends exist everywhere; only the registration arrives late).
	const lateDoc = `<catalog>
  <watch id="0"><brand>Seiko</brand><model>Dive 555</model><case>titanium</case><price>321.00</price><water>200</water></watch>
  <watch id="1"><brand>Casio</brand><model>Field 7</model><case>resin</case><price>59.99</price><water>50</water></watch>
  <provider><name>LateProvider</name></provider>
</catalog>`
	world.Catalog.XML.MustAdd("late.xml", lateDoc)

	lateDef := datasource.Definition{ID: "xml_late", Kind: datasource.KindXML, Path: "late.xml"}
	lateEntries := []mapping.Entry{
		{AttributeID: "thing.product.brand", SourceID: "xml_late", Rule: mapping.Rule{Language: mapping.LangXPath, Code: "/catalog/watch/brand"}},
		{AttributeID: "thing.product.model", SourceID: "xml_late", Rule: mapping.Rule{Language: mapping.LangXPath, Code: "/catalog/watch/model"}},
		{AttributeID: "thing.product.watch.case", SourceID: "xml_late", Rule: mapping.Rule{Language: mapping.LangXPath, Code: "/catalog/watch/case"}},
		{AttributeID: "thing.product.price", SourceID: "xml_late", Rule: mapping.Rule{Language: mapping.LangXPath, Code: "/catalog/watch/price"}},
		{AttributeID: "thing.product.watch.water_resistance", SourceID: "xml_late", Rule: mapping.Rule{Language: mapping.LangXPath, Code: "/catalog/watch/water"}},
		{AttributeID: "thing.provider.name", SourceID: "xml_late", Rule: mapping.Rule{Language: mapping.LangXPath, Code: "/catalog/provider/name"}, Scenario: mapping.SingleRecord},
	}

	// The rig regenerates the same world from the same spec, but the
	// kill-switch harness shares nothing with this test's pre-seeded
	// document — so build the cluster by hand over this world.
	rig := &clusterRig{
		t: t, world: world, clk: newClusterClock(),
		mws:     map[string]*core.Middleware{},
		nodes:   map[string]*cluster.Node{},
		servers: map[string]*httptest.Server{},
		kills:   map[string]*killSwitch{},
	}
	newMW := func(apply bool) *core.Middleware {
		mw, err := core.New(core.Config{Ontology: world.Ontology, Backends: extract.FromCatalog(world.Catalog)})
		if err != nil {
			t.Fatal(err)
		}
		if apply {
			if err := world.Apply(mw); err != nil {
				t.Fatal(err)
			}
		}
		return mw
	}
	rig.baselineMW = newMW(true)
	baseSrv := httptest.NewServer(transport.NewServer(rig.baselineMW))
	t.Cleanup(baseSrv.Close)
	rig.baseline = transport.NewClient(baseSrv.URL, nil)

	rig.coordMW = newMW(true)
	coord, err := cluster.NewNode(transport.NewServer(rig.coordMW), cluster.Options{ID: "n1", Now: rig.clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord)
	t.Cleanup(coordSrv.Close)
	coord.SetAddr(coordSrv.URL)
	rig.nodes["n1"], rig.servers["n1"] = coord, coordSrv
	for _, id := range []string{"n2", "n3"} {
		mw := newMW(false)
		node, err := cluster.NewNode(transport.NewServer(mw), cluster.Options{
			ID: id, CoordinatorURL: coordSrv.URL, Now: rig.clk.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(node)
		t.Cleanup(srv.Close)
		node.SetAddr(srv.URL)
		if err := node.Join(context.Background()); err != nil {
			t.Fatal(err)
		}
		rig.nodes[id], rig.servers[id], rig.mws[id] = node, srv, mw
	}

	// Pre-registration equivalence.
	rig.assertEquivalent("SELECT product", "json")

	// Race: queries keep flowing while the registrations land.
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				cr, err := rig.queryCluster("SELECT product", "json")
				if err != nil {
					t.Errorf("query during registration: %v", err)
					return
				}
				if cr.Body == "" {
					t.Error("query during registration returned an empty body")
					return
				}
			}
		}()
	}
	post := func(path string, body any) {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(coordSrv.URL+path, "application/json", strings.NewReader(string(data)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST %s status = %d", path, resp.StatusCode)
		}
	}
	post("/sources", transport.FromDefinition(lateDef))
	for _, e := range lateEntries {
		post("/mappings", transport.FromEntry(e))
	}
	wg.Wait()

	// Post-registration oracle: a single node that registered the same
	// late source directly.
	if err := rig.baselineMW.RegisterSource(lateDef); err != nil {
		t.Fatal(err)
	}
	for _, e := range lateEntries {
		if err := rig.baselineMW.RegisterMapping(e); err != nil {
			t.Fatal(err)
		}
	}
	cr := rig.assertEquivalent("SELECT product", "json")
	if cr.Cluster.Degraded {
		t.Errorf("post-registration answer degraded: %+v", cr.Cluster)
	}
	if !strings.Contains(cr.Body, "Dive 555") {
		t.Error("post-registration answer is missing the late source's records")
	}
	syncs := uint64(0)
	for _, id := range []string{"n2", "n3"} {
		syncs += rig.mws[id].Metrics().Counter(obs.MetricClusterCatalogSyncs, nil).Value()
	}
	if syncs == 0 {
		t.Error("no member pulled the catalog; version-gated sub-queries should force a sync")
	}
}
