// Package integration exercises the S2S middleware across module
// boundaries: the full Figure-1 pipeline against ground truth, failure
// injection on autonomous sources, configuration persistence, and the
// network deployment with semantic post-processing.
package integration

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/reason"
	"repro/internal/sparql"
	"repro/internal/transport"
	"repro/internal/workload"
)

func build(t *testing.T, spec workload.Spec, opts extract.Options) (*core.Middleware, *workload.World) {
	t.Helper()
	world := workload.MustGenerate(spec)
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	return mw, world
}

// TestFullPipelineAtScale runs several query shapes over a larger world and
// checks every count against the generator's ground truth.
func TestFullPipelineAtScale(t *testing.T) {
	mw, world := build(t, workload.Spec{
		DBSources: 3, XMLSources: 3, WebSources: 3, TextSources: 3,
		RecordsPerSource: 50, Seed: 61,
	}, extract.Options{})
	ctx := context.Background()

	cases := []struct {
		query string
		pred  func(workload.Record) bool
	}{
		{"SELECT product", func(workload.Record) bool { return true }},
		{"SELECT product WHERE brand='Seiko'", func(r workload.Record) bool { return r.Brand == "Seiko" }},
		{"SELECT product WHERE price < 250", func(r workload.Record) bool { return r.Price < 250 }},
		{"SELECT product WHERE brand='Casio' AND case='resin'",
			func(r workload.Record) bool { return r.Brand == "Casio" && r.Case == "resin" }},
		{"SELECT product WHERE brand LIKE 'c%'", func(r workload.Record) bool {
			return strings.HasPrefix(r.Brand, "C")
		}},
		{"SELECT watch WHERE water_resistance >= 100 AND price > 100", func(r workload.Record) bool {
			return r.WaterResistance >= 100 && r.Price > 100 && !strings.HasPrefix(r.SourceID, "web_")
		}},
	}
	for _, c := range cases {
		res, err := mw.Query(ctx, c.query)
		if err != nil {
			t.Errorf("%s: %v", c.query, err)
			continue
		}
		if len(res.Errors) > 0 {
			t.Errorf("%s: errors %v", c.query, res.Errors)
		}
		want := world.CountMatching(c.pred)
		if len(res.Matched) != want {
			t.Errorf("%s: matched %d, ground truth %d", c.query, len(res.Matched), want)
		}
	}
}

// TestAllFormatsParseBack serializes one result in every format and parses
// the RDF ones back, checking triple-set agreement.
func TestAllFormatsParseBack(t *testing.T) {
	mw, _ := build(t, workload.Spec{DBSources: 1, XMLSources: 1, RecordsPerSource: 20, Seed: 62}, extract.Options{})
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	gen := mw.Generator()

	owlOut, err := gen.SerializeString(res, instance.FormatOWL)
	if err != nil {
		t.Fatal(err)
	}
	ttlOut, err := gen.SerializeString(res, instance.FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	ntOut, err := gen.SerializeString(res, instance.FormatNTriples)
	if err != nil {
		t.Fatal(err)
	}
	gOWL, err := owl.ParseRDFXML(strings.NewReader(owlOut))
	if err != nil {
		t.Fatalf("owl: %v", err)
	}
	gTTL, err := rdf.ParseTurtle(strings.NewReader(ttlOut))
	if err != nil {
		t.Fatalf("turtle: %v", err)
	}
	gNT, err := rdf.ParseNTriples(strings.NewReader(ntOut))
	if err != nil {
		t.Fatalf("ntriples: %v", err)
	}
	if !gOWL.Equal(gTTL) || !gTTL.Equal(gNT) {
		t.Fatalf("RDF serializations disagree: owl=%d ttl=%d nt=%d triples",
			gOWL.Len(), gTTL.Len(), gNT.Len())
	}
}

// flakyFetcher fails a deterministic fraction of fetches.
type flakyFetcher struct {
	mu    sync.Mutex
	inner interface {
		Fetch(string) (string, error)
	}
	n        int
	failEach int // every n-th fetch fails
}

func (f *flakyFetcher) Fetch(url string) (string, error) {
	f.mu.Lock()
	f.n++
	n := f.n
	f.mu.Unlock()
	if f.failEach > 0 && n%f.failEach == 0 {
		return "", fmt.Errorf("injected network failure #%d", n)
	}
	return f.inner.Fetch(url)
}

// TestFailureInjectionIsolation: a mix of healthy and failing sources must
// produce complete answers from the healthy ones plus per-source errors —
// never a global failure.
func TestFailureInjectionIsolation(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 10, Seed: 63,
	})
	backends := extract.FromCatalog(world.Catalog)
	// Every web fetch fails.
	backends.Pages = &flakyFetcher{inner: world.Catalog, failEach: 1}
	mw, err := core.New(core.Config{Ontology: world.Ontology, Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	healthy := world.CountMatching(func(r workload.Record) bool {
		return !strings.HasPrefix(r.SourceID, "web_")
	})
	if len(res.Matched) != healthy {
		t.Errorf("matched = %d, want %d from healthy sources", len(res.Matched), healthy)
	}
	if len(res.Errors) == 0 {
		t.Error("no errors reported for failing sources")
	}
	for _, e := range res.Errors {
		if !strings.HasPrefix(e.SourceID, "web_") {
			t.Errorf("error attributed to healthy source: %v", e)
		}
	}
}

// TestRetriesMaskTransientFailures: with retries enabled, a 1-in-3 failure
// rate must not lose data.
func TestRetriesMaskTransientFailures(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{WebSources: 3, RecordsPerSource: 5, Seed: 64})
	backends := extract.FromCatalog(world.Catalog)
	backends.Pages = &flakyFetcher{inner: world.Catalog, failEach: 3}
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: backends,
		Extract:  extract.Options{Retries: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) > 0 {
		t.Fatalf("errors despite retries: %v", res.Errors)
	}
	if len(res.Matched) != 15 {
		t.Errorf("matched = %d, want 15", len(res.Matched))
	}
}

// TestConfigServeSPARQL is the full operational loop: capture config,
// rebuild the middleware from it, serve it over HTTP, and run a reasoned
// SPARQL query remotely.
func TestConfigServeSPARQL(t *testing.T) {
	mw, world := build(t, workload.Spec{DBSources: 1, XMLSources: 1, RecordsPerSource: 12, Seed: 65}, extract.Options{})
	cfg, err := config.FromMiddleware(mw)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := cfg.BuildMiddleware(core.Config{Backends: extract.FromCatalog(world.Catalog)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(transport.NewServer(rebuilt))
	defer srv.Close()
	client := transport.NewClient(srv.URL, nil)

	resp, err := client.SPARQL(context.Background(), transport.SPARQLRequest{
		SPARQL: `PREFIX ont: <http://s2s.uma.pt/watch#> SELECT ?x WHERE { ?x a ont:product . }`,
		Reason: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Bindings) != len(world.Records) {
		t.Fatalf("bindings = %d, want %d", len(resp.Bindings), len(world.Records))
	}
}

// TestConcurrentQueriesAndRegistration: queries racing with new-source
// registration must each see a consistent snapshot and never error.
func TestConcurrentQueriesAndRegistration(t *testing.T) {
	mw, world := build(t, workload.Spec{XMLSources: 1, RecordsPerSource: 10, Seed: 66}, extract.Options{})
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Query workers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := mw.Query(ctx, "SELECT product")
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if len(res.Matched) < 10 {
					t.Errorf("matched dropped to %d", len(res.Matched))
					return
				}
			}
		}()
	}

	// Registration worker: adds 20 new XML sources.
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("conc-%02d.xml", i)
		world.Catalog.XML.MustAdd(path, "<catalog><watch><brand>Orient</brand></watch></catalog>")
		if err := mw.RegisterSource(datasource.Definition{
			ID: fmt.Sprintf("conc_%02d", i), Kind: datasource.KindXML, Path: path,
		}); err != nil {
			t.Fatal(err)
		}
		if err := mw.RegisterMapping(mapping.Entry{
			AttributeID: "thing.product.brand", SourceID: fmt.Sprintf("conc_%02d", i),
			Rule: mapping.Rule{Code: "/catalog/watch/brand"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	res, err := mw.Query(ctx, "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 30 {
		t.Errorf("final matched = %d, want 30", len(res.Matched))
	}
}

// TestCacheCoherenceAfterInvalidation: cached rule results go stale when a
// source changes; invalidation restores freshness.
func TestCacheCoherenceAfterInvalidation(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{XMLSources: 1, RecordsPerSource: 3, Seed: 67})
	reg := datasource.NewRegistry()
	repo := mapping.NewRepository(world.Ontology, reg)
	for _, d := range world.Definitions {
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range world.Entries {
		repo.MustRegister(e)
	}
	mgr := extract.NewManager(repo, extract.FromCatalog(world.Catalog), extract.Options{CacheTTL: time.Hour})
	ctx := context.Background()
	attrs := []string{"thing.product.brand"}

	first, err := mgr.Extract(ctx, attrs)
	if err != nil {
		t.Fatal(err)
	}
	// The source changes underneath.
	world.Catalog.XML.MustAdd("catalog-000.xml", "<catalog><watch><brand>NewBrand</brand></watch></catalog>")
	stale, err := mgr.Extract(ctx, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale.Fragments[0].Values) != len(first.Fragments[0].Values) {
		t.Fatal("cache did not serve the stale values")
	}
	mgr.InvalidateCache()
	fresh, err := mgr.Extract(ctx, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Fragments[0].Values) != 1 || fresh.Fragments[0].Values[0] != "NewBrand" {
		t.Fatalf("post-invalidation values = %v", fresh.Fragments[0].Values)
	}
}

// TestReasonedSubclassAnswerAgainstGroundTruth ties reasoning back to the
// generator: products entailed via watch ⊑ product equal the record count.
func TestReasonedSubclassAnswerAgainstGroundTruth(t *testing.T) {
	mw, world := build(t, workload.Spec{TextSources: 2, RecordsPerSource: 15, Seed: 68}, extract.Options{})
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	graph, err := mw.Generator().ToGraph(res)
	if err != nil {
		t.Fatal(err)
	}
	materialized, err := reason.Materialize(world.Ontology.ToGraph(), graph)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sparql.Select(materialized, `PREFIX ont: <http://s2s.uma.pt/watch#>
		SELECT DISTINCT ?x WHERE { ?x a ont:thing . ?x ont:thing_product_brand ?b . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Bindings) != len(world.Records) {
		t.Fatalf("reasoned thing count = %d, want %d", len(out.Bindings), len(world.Records))
	}
}
