// Package xmlstore implements the middleware's semi-structured data source
// substrate: a store of named XML documents queried with xmlpath extraction
// rules (paper §2.1 lists XML as the canonical semi-structured B2B format).
package xmlstore

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/xmlpath"
)

// Store holds parsed XML documents by ID. The zero value is not usable;
// construct with New. Store is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	docs map[string]*xmlpath.Node
}

// New returns an empty store.
func New() *Store {
	return &Store{docs: make(map[string]*xmlpath.Node)}
}

// Add parses and stores a document under the given ID, replacing any
// previous document with that ID.
func (s *Store) Add(id, doc string) error {
	if id == "" {
		return fmt.Errorf("xmlstore: document ID is empty")
	}
	root, err := xmlpath.ParseString(doc)
	if err != nil {
		return fmt.Errorf("xmlstore: document %q: %w", id, err)
	}
	s.mu.Lock()
	s.docs[id] = root
	s.mu.Unlock()
	return nil
}

// MustAdd is Add but panics on error; for static fixtures.
func (s *Store) MustAdd(id, doc string) {
	if err := s.Add(id, doc); err != nil {
		panic(err)
	}
}

// Get returns the parsed document root.
func (s *Store) Get(id string) (*xmlpath.Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	root, ok := s.docs[id]
	if !ok {
		return nil, fmt.Errorf("xmlstore: no document %q", id)
	}
	return root, nil
}

// IDs returns all document IDs in sorted order.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for id := range s.docs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Extract compiles the path expression and returns the matching string
// values from the named document, in document order.
func (s *Store) Extract(id, pathExpr string) ([]string, error) {
	root, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	p, err := xmlpath.Compile(pathExpr)
	if err != nil {
		return nil, fmt.Errorf("xmlstore: document %q: %w", id, err)
	}
	return p.SelectStrings(root), nil
}
