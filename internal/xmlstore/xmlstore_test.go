package xmlstore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

const doc = `<catalog><watch id="1"><brand>Seiko</brand></watch><watch id="2"><brand>Casio</brand></watch></catalog>`

func TestAddGetExtract(t *testing.T) {
	s := New()
	if err := s.Add("xml_7", doc); err != nil {
		t.Fatal(err)
	}
	got, err := s.Extract("xml_7", "/catalog/watch/brand")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "Seiko" || got[1] != "Casio" {
		t.Fatalf("Extract = %v", got)
	}
	root, err := s.Get("xml_7")
	if err != nil || root == nil {
		t.Fatalf("Get: %v", err)
	}
	if ids := s.IDs(); len(ids) != 1 || ids[0] != "xml_7" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestErrors(t *testing.T) {
	s := New()
	if err := s.Add("", doc); err == nil {
		t.Error("empty ID accepted")
	}
	if err := s.Add("bad", "<unclosed>"); err == nil {
		t.Error("malformed document accepted")
	}
	if _, err := s.Get("missing"); err == nil {
		t.Error("missing document returned")
	}
	if _, err := s.Extract("missing", "/a"); err == nil {
		t.Error("extract from missing document succeeded")
	}
	s.MustAdd("ok", doc)
	if _, err := s.Extract("ok", "//["); err == nil {
		t.Error("bad path accepted")
	}
}

func TestReplaceDocument(t *testing.T) {
	s := New()
	s.MustAdd("d", `<a><v>1</v></a>`)
	s.MustAdd("d", `<a><v>2</v></a>`)
	got, err := s.Extract("d", "/a/v")
	if err != nil || len(got) != 1 || got[0] != "2" {
		t.Fatalf("Extract after replace = %v, %v", got, err)
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd did not panic")
		}
	}()
	New().MustAdd("x", "not xml")
}

func TestConcurrentUse(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				id := fmt.Sprintf("doc-%d-%d", w, i)
				s.MustAdd(id, doc)
				if _, err := s.Extract(id, "//brand"); err != nil {
					t.Errorf("Extract: %v", err)
					return
				}
				s.IDs()
			}
		}(w)
	}
	wg.Wait()
	if got := len(s.IDs()); got != 240 {
		t.Fatalf("IDs = %d, want 240", got)
	}
}

func TestLargeDocumentOrder(t *testing.T) {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "<watch><brand>b%03d</brand></watch>", i)
	}
	b.WriteString("</catalog>")
	s := New()
	s.MustAdd("big", b.String())
	got, err := s.Extract("big", "//brand")
	if err != nil || len(got) != 200 {
		t.Fatalf("Extract = %d values, %v", len(got), err)
	}
	for i, v := range got {
		if v != fmt.Sprintf("b%03d", i) {
			t.Fatalf("value %d = %q, document order broken", i, v)
		}
	}
}
