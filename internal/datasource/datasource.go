// Package datasource implements the S2S middleware's data source layer:
// source kinds, per-kind connection information, the centralized source
// registry of paper §2.3.2 ("Registering data sources separately from the
// extraction rules is useful to create a centralized connection information
// store, allowing reuse and preventing information redundancy"), and the
// in-memory catalog that simulates the distributed sources themselves.
package datasource

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/reldb"
	"repro/internal/textsrc"
	"repro/internal/webl"
	"repro/internal/xmlstore"
)

// Kind is a data source type. The paper's taxonomy (§2.1): structured
// (relational databases), semi-structured (XML), and unstructured (web
// pages and plain text files).
type Kind int

// Source kinds.
const (
	KindWeb Kind = iota + 1
	KindXML
	KindDatabase
	KindText
)

func (k Kind) String() string {
	switch k {
	case KindWeb:
		return "web"
	case KindXML:
		return "xml"
	case KindDatabase:
		return "database"
	case KindText:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Definition is one registered data source: its identifier (the "wpage_81" /
// "DB_ID_45" of the paper's mapping entries) and kind-specific connection
// information. Web pages require URLs, files require paths, and databases
// require location plus credentials (paper §2.3.2).
type Definition struct {
	// ID is the registry-unique source identifier.
	ID string
	// Kind selects the extractor used for this source.
	Kind Kind
	// URL is the page address for KindWeb sources.
	URL string
	// Path is the document path for KindXML and KindText sources.
	Path string
	// DSN locates the database for KindDatabase sources.
	DSN string
	// Props carries additional connection details (login, password, driver
	// type) that the paper's source repository records.
	Props map[string]string
}

// Validate checks that the definition carries the connection information
// its kind requires.
func (d Definition) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("datasource: definition has empty ID")
	}
	switch d.Kind {
	case KindWeb:
		if d.URL == "" {
			return fmt.Errorf("datasource: web source %q requires a URL", d.ID)
		}
	case KindXML, KindText:
		if d.Path == "" {
			return fmt.Errorf("datasource: %s source %q requires a path", d.Kind, d.ID)
		}
	case KindDatabase:
		if d.DSN == "" {
			return fmt.Errorf("datasource: database source %q requires a DSN", d.ID)
		}
	default:
		return fmt.Errorf("datasource: source %q has unknown kind %d", d.ID, int(d.Kind))
	}
	return nil
}

// Registry is the centralized data source repository. It is safe for
// concurrent use.
type Registry struct {
	mu   sync.RWMutex
	defs map[string]Definition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{defs: make(map[string]Definition)}
}

// Register adds a source definition. IDs must be unique.
func (r *Registry) Register(def Definition) error {
	if err := def.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.defs[def.ID]; exists {
		return fmt.Errorf("datasource: source %q already registered", def.ID)
	}
	r.defs[def.ID] = def
	return nil
}

// Lookup resolves a source ID.
func (r *Registry) Lookup(id string) (Definition, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	def, ok := r.defs[id]
	if !ok {
		return Definition{}, fmt.Errorf("datasource: source %q not registered", id)
	}
	return def, nil
}

// All returns every definition in ID order.
func (r *Registry) All() []Definition {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Definition, 0, len(r.defs))
	for _, d := range r.defs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered sources.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.defs)
}

// Catalog holds the content backends the extractors read from. In the
// paper's deployment these are remote, autonomous systems; the catalog
// simulates them in-process, and the transport package substitutes
// HTTP-backed equivalents for genuinely remote sources.
type Catalog struct {
	mu    sync.RWMutex
	pages map[string]string
	dbs   map[string]*reldb.DB

	// XML and Text are the document stores backing KindXML and KindText
	// sources, keyed by Definition.Path.
	XML  *xmlstore.Store
	Text *textsrc.Store
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		pages: make(map[string]string),
		dbs:   make(map[string]*reldb.DB),
		XML:   xmlstore.New(),
		Text:  textsrc.New(),
	}
}

// AddPage publishes HTML content at a URL.
func (c *Catalog) AddPage(url, html string) {
	c.mu.Lock()
	c.pages[url] = html
	c.mu.Unlock()
}

// AddDB attaches a database under a DSN.
func (c *Catalog) AddDB(dsn string, db *reldb.DB) {
	c.mu.Lock()
	c.dbs[dsn] = db
	c.mu.Unlock()
}

// Fetch implements webl.Fetcher over the published pages.
func (c *Catalog) Fetch(url string) (string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	html, ok := c.pages[url]
	if !ok {
		return "", fmt.Errorf("datasource: no page published at %q", url)
	}
	return html, nil
}

// DB resolves a DSN to its database.
func (c *Catalog) DB(dsn string) (*reldb.DB, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	db, ok := c.dbs[dsn]
	if !ok {
		return nil, fmt.Errorf("datasource: no database at %q", dsn)
	}
	return db, nil
}

var _ webl.Fetcher = (*Catalog)(nil)
