package datasource

import (
	"strings"
	"testing"

	"repro/internal/reldb"
)

func TestDefinitionValidate(t *testing.T) {
	tests := []struct {
		name    string
		def     Definition
		wantErr bool
	}{
		{"web ok", Definition{ID: "wpage_81", Kind: KindWeb, URL: "http://shop/w"}, false},
		{"web missing url", Definition{ID: "w", Kind: KindWeb}, true},
		{"xml ok", Definition{ID: "x", Kind: KindXML, Path: "catalog.xml"}, false},
		{"xml missing path", Definition{ID: "x", Kind: KindXML}, true},
		{"db ok", Definition{ID: "DB_ID_45", Kind: KindDatabase, DSN: "inventory"}, false},
		{"db missing dsn", Definition{ID: "d", Kind: KindDatabase}, true},
		{"text ok", Definition{ID: "t", Kind: KindText, Path: "prices.txt"}, false},
		{"empty id", Definition{Kind: KindWeb, URL: "http://x"}, true},
		{"unknown kind", Definition{ID: "u", Kind: Kind(99)}, true},
	}
	for _, tt := range tests {
		err := tt.def.Validate()
		if (err != nil) != tt.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tt.name, err, tt.wantErr)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindWeb: "web", KindXML: "xml", KindDatabase: "database", KindText: "text"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind string")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	def := Definition{ID: "wpage_81", Kind: KindWeb, URL: "http://shop/watches"}
	if err := r.Register(def); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(def); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := r.Register(Definition{ID: "bad", Kind: KindWeb}); err == nil {
		t.Error("invalid definition accepted")
	}
	got, err := r.Lookup("wpage_81")
	if err != nil || got.URL != def.URL {
		t.Fatalf("Lookup = %+v, %v", got, err)
	}
	if _, err := r.Lookup("missing"); err == nil {
		t.Error("missing lookup succeeded")
	}
	if err := r.Register(Definition{ID: "DB_ID_45", Kind: KindDatabase, DSN: "inv"}); err != nil {
		t.Fatal(err)
	}
	all := r.All()
	if len(all) != 2 || all[0].ID != "DB_ID_45" {
		t.Errorf("All = %+v", all)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestCatalogPagesAndDBs(t *testing.T) {
	c := NewCatalog()
	c.AddPage("http://shop/w1", "<html>watch</html>")
	html, err := c.Fetch("http://shop/w1")
	if err != nil || html != "<html>watch</html>" {
		t.Fatalf("Fetch = %q, %v", html, err)
	}
	if _, err := c.Fetch("http://shop/missing"); err == nil {
		t.Error("missing page fetched")
	}

	db := reldb.New()
	db.MustExec("CREATE TABLE t (a TEXT)")
	c.AddDB("inventory", db)
	got, err := c.DB("inventory")
	if err != nil || got != db {
		t.Fatalf("DB = %v, %v", got, err)
	}
	if _, err := c.DB("missing"); err == nil {
		t.Error("missing DB resolved")
	}

	// XML and text stores are wired in.
	c.XML.MustAdd("cat.xml", "<a><b>1</b></a>")
	if vals, err := c.XML.Extract("cat.xml", "/a/b"); err != nil || len(vals) != 1 {
		t.Errorf("XML extract = %v, %v", vals, err)
	}
	c.Text.MustAdd("p.txt", "price=5")
	if vals, err := c.Text.Extract("p.txt", `price=([0-9]+)`); err != nil || vals[0] != "5" {
		t.Errorf("Text extract = %v, %v", vals, err)
	}
}
