package reldb

import (
	"fmt"
	"strings"

	"repro/internal/sqllang"
)

// table is one relation: a schema, row storage, and hash indexes.
type table struct {
	name    string
	columns []sqllang.ColumnDef
	colIdx  map[string]int // lower-cased column name → position
	rows    [][]Value
	// indexes maps an indexed column position to value-key → row numbers.
	// Primary key and UNIQUE columns are always indexed.
	indexes map[int]map[string][]int
	pk      int // primary key column position, -1 if none
}

func newTable(stmt *sqllang.CreateTable) (*table, error) {
	t := &table{
		name:    stmt.Table,
		columns: stmt.Columns,
		colIdx:  make(map[string]int, len(stmt.Columns)),
		indexes: make(map[int]map[string][]int),
		pk:      -1,
	}
	for i, c := range stmt.Columns {
		key := strings.ToLower(c.Name)
		if _, dup := t.colIdx[key]; dup {
			return nil, fmt.Errorf("reldb: table %s declares column %q twice", stmt.Table, c.Name)
		}
		t.colIdx[key] = i
		if c.PrimaryKey {
			if t.pk >= 0 {
				return nil, fmt.Errorf("reldb: table %s declares two primary keys", stmt.Table)
			}
			t.pk = i
		}
		if c.PrimaryKey || c.Unique {
			t.indexes[i] = make(map[string][]int)
		}
	}
	return t, nil
}

// column resolves a column name to its position.
func (t *table) column(name string) (int, error) {
	i, ok := t.colIdx[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("reldb: table %s has no column %q", t.name, name)
	}
	return i, nil
}

// addIndex creates a hash index on the named column and backfills it.
func (t *table) addIndex(column string) error {
	i, err := t.column(column)
	if err != nil {
		return err
	}
	if _, exists := t.indexes[i]; exists {
		return nil
	}
	idx := make(map[string][]int)
	for rowNo, row := range t.rows {
		k := row[i].key()
		idx[k] = append(idx[k], rowNo)
	}
	t.indexes[i] = idx
	return nil
}

// insert appends a row, enforcing uniqueness and maintaining indexes.
func (t *table) insert(row []Value) error {
	for col := range t.indexes {
		if t.isUniqueCol(col) {
			if rows := t.indexes[col][row[col].key()]; len(rows) > 0 && !row[col].Null {
				return fmt.Errorf("reldb: duplicate value %s for unique column %s.%s",
					row[col], t.name, t.columns[col].Name)
			}
		}
	}
	rowNo := len(t.rows)
	t.rows = append(t.rows, row)
	for col, idx := range t.indexes {
		k := row[col].key()
		idx[k] = append(idx[k], rowNo)
	}
	return nil
}

func (t *table) isUniqueCol(col int) bool {
	return t.columns[col].PrimaryKey || t.columns[col].Unique
}

// rebuildIndexes recomputes every index after bulk row mutation
// (UPDATE/DELETE).
func (t *table) rebuildIndexes() {
	for col := range t.indexes {
		idx := make(map[string][]int)
		for rowNo, row := range t.rows {
			k := row[col].key()
			idx[k] = append(idx[k], rowNo)
		}
		t.indexes[col] = idx
	}
}

// candidateRows returns the row numbers an equality predicate on the given
// column can match, using an index when one exists. The boolean reports
// whether an index was used; when false the caller must scan all rows.
func (t *table) candidateRows(col int, v Value) ([]int, bool) {
	idx, ok := t.indexes[col]
	if !ok {
		return nil, false
	}
	return idx[v.key()], true
}
