package reldb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqllang"
)

// aggregate executes the GROUP BY / aggregate-function path of a SELECT
// over the filtered joined tuples. Plain select items must appear in GROUP
// BY; with no GROUP BY, the whole input forms one group.
func (db *DB) aggregate(sel *sqllang.Select, tables []*table, tuples [][][]Value) (*Result, error) {
	// Resolve GROUP BY columns.
	groupPos := make([]colPos, len(sel.GroupBy))
	groupKeySet := make(map[string]bool, len(sel.GroupBy))
	for i, ref := range sel.GroupBy {
		pos, err := resolveRef(tables, ref)
		if err != nil {
			return nil, err
		}
		groupPos[i] = pos
		groupKeySet[strings.ToLower(ref.Column)] = true
		if ref.Table != "" {
			groupKeySet[strings.ToLower(ref.String())] = true
		}
	}

	// Validate and resolve the select list.
	if len(sel.Columns) == 0 {
		return nil, fmt.Errorf("reldb: SELECT * cannot be combined with GROUP BY or aggregates")
	}
	type itemPlan struct {
		item sqllang.SelectItem
		pos  colPos // unused for COUNT(*)
	}
	plans := make([]itemPlan, 0, len(sel.Columns))
	res := &Result{}
	for _, item := range sel.Columns {
		ip := itemPlan{item: item}
		if !item.Star {
			pos, err := resolveRef(tables, item.Col)
			if err != nil {
				return nil, err
			}
			ip.pos = pos
		}
		if item.Agg == sqllang.AggNone {
			if !groupKeySet[strings.ToLower(item.Col.Column)] && !groupKeySet[strings.ToLower(item.Col.String())] {
				return nil, fmt.Errorf("reldb: column %q must appear in GROUP BY or an aggregate", item.Col.String())
			}
		}
		plans = append(plans, ip)
		res.Columns = append(res.Columns, item.String())
	}

	// Partition tuples into groups.
	type group struct {
		key    string
		sample [][]Value // representative tuple for group-by values
		rows   [][][]Value
	}
	groups := map[string]*group{}
	var order []string
	for _, tuple := range tuples {
		var kb strings.Builder
		for _, pos := range groupPos {
			kb.WriteString(tuple[pos.ti][pos.ci].key())
			kb.WriteByte('\x00')
		}
		key := kb.String()
		g, ok := groups[key]
		if !ok {
			g = &group{key: key, sample: tuple}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, tuple)
	}
	sort.Strings(order)
	// With no GROUP BY and no input rows, aggregates still produce one row
	// (COUNT(*) = 0).
	if len(sel.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	for _, key := range order {
		g := groups[key]
		row := make([]Value, len(plans))
		for i, ip := range plans {
			v, err := computeAggregate(ip.item, ip.pos, g.sample, g.rows)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
	}

	// ORDER BY matches an output column by its printed name (e.g. ORDER BY
	// brand after GROUP BY brand) — aggregates order by group key otherwise.
	if sel.Order != nil {
		target := -1
		for i, name := range res.Columns {
			if strings.EqualFold(name, sel.Order.Column.String()) {
				target = i
				break
			}
		}
		if target < 0 {
			return nil, fmt.Errorf("reldb: ORDER BY %s does not match an output column", sel.Order.Column.String())
		}
		var sortErr error
		sort.SliceStable(res.Rows, func(i, j int) bool {
			a, b := res.Rows[i][target], res.Rows[j][target]
			if a.Null != b.Null {
				return a.Null
			}
			if a.Null {
				return false
			}
			c, err := compare(a, b)
			if err != nil {
				sortErr = err
				return false
			}
			if sel.Order.Desc {
				return c > 0
			}
			return c < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	res.Rows = applyOffsetLimit(res.Rows, sel.Offset, sel.Limit)
	return res, nil
}

// computeAggregate evaluates one select item over one group.
func computeAggregate(item sqllang.SelectItem, pos colPos, sample [][]Value, rows [][][]Value) (Value, error) {
	if item.Agg == sqllang.AggNone {
		if sample == nil {
			return NullValue(), nil
		}
		return sample[pos.ti][pos.ci], nil
	}
	if item.Star {
		return Int(int64(len(rows))), nil
	}

	// Collect non-null values of the target column.
	var values []Value
	for _, tuple := range rows {
		v := tuple[pos.ti][pos.ci]
		if !v.Null {
			values = append(values, v)
		}
	}
	switch item.Agg {
	case sqllang.AggCount:
		return Int(int64(len(values))), nil
	case sqllang.AggMin, sqllang.AggMax:
		if len(values) == 0 {
			return NullValue(), nil
		}
		best := values[0]
		for _, v := range values[1:] {
			c, err := compare(v, best)
			if err != nil {
				return Value{}, err
			}
			if (item.Agg == sqllang.AggMin && c < 0) || (item.Agg == sqllang.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	case sqllang.AggSum, sqllang.AggAvg:
		if len(values) == 0 {
			return NullValue(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range values {
			n, ok := v.numeric()
			if !ok {
				return Value{}, fmt.Errorf("reldb: %s over non-numeric column %q", item.Agg, item.Col.String())
			}
			if v.Type != sqllang.TypeInteger {
				allInt = false
			}
			sum += n
		}
		if item.Agg == sqllang.AggAvg {
			return Real(sum / float64(len(values))), nil
		}
		if allInt {
			return Int(int64(sum)), nil
		}
		return Real(sum), nil
	default:
		return Value{}, fmt.Errorf("reldb: unsupported aggregate %v", item.Agg)
	}
}
