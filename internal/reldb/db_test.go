package reldb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// watchDB builds the paper's database scenario: a catalog of watches, the
// "might have n data records" data source of §2.3.
func watchDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	stmts := []string{
		"CREATE TABLE providers (id INTEGER PRIMARY KEY, name TEXT, country TEXT)",
		"CREATE TABLE watches (id INTEGER PRIMARY KEY, brand TEXT, model TEXT, watch_case TEXT, price REAL, pid INTEGER, waterproof BOOLEAN)",
		"INSERT INTO providers (id, name, country) VALUES (1, 'WatchCo', 'PT'), (2, 'TimeHouse', 'JP')",
		`INSERT INTO watches (id, brand, model, watch_case, price, pid, waterproof) VALUES
			(1, 'Seiko', 'Dive Auto', 'stainless-steel', 129.99, 2, TRUE),
			(2, 'Seiko', 'Dress', 'gold', 299.5, 2, FALSE),
			(3, 'Casio', 'F91W', 'resin', 15.0, 1, TRUE),
			(4, 'Citizen', 'EcoDrive', 'stainless-steel', 180.0, 1, TRUE)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("Exec(%q): %v", s, err)
		}
	}
	return db
}

func TestInsertAndCount(t *testing.T) {
	db := watchDB(t)
	n, err := db.RowCount("watches")
	if err != nil || n != 4 {
		t.Fatalf("RowCount = %d, %v", n, err)
	}
	if got := db.Tables(); len(got) != 2 || got[0] != "providers" {
		t.Errorf("Tables = %v", got)
	}
}

func TestSelectWhereEquality(t *testing.T) {
	db := watchDB(t)
	res, err := db.Query("SELECT brand, watch_case FROM watches WHERE brand = 'Seiko' AND watch_case = 'stainless-steel'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if got, _ := res.Rows[0][0].TextValue(); got != "Seiko" {
		t.Errorf("brand = %q", got)
	}
}

func TestSelectComparisonsAndLogic(t *testing.T) {
	db := watchDB(t)
	tests := []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM watches WHERE price < 100", 1},
		{"SELECT * FROM watches WHERE price <= 129.99", 2},
		{"SELECT * FROM watches WHERE price > 100 AND waterproof = TRUE", 2},
		{"SELECT * FROM watches WHERE brand != 'Seiko'", 2},
		{"SELECT * FROM watches WHERE brand = 'Seiko' OR brand = 'Casio'", 3},
		{"SELECT * FROM watches WHERE NOT brand = 'Seiko'", 2},
		{"SELECT * FROM watches WHERE brand LIKE 'C%'", 2},
		{"SELECT * FROM watches WHERE brand LIKE '_asio'", 1},
		{"SELECT * FROM watches WHERE brand LIKE 'seiko'", 2}, // case-insensitive
		{"SELECT * FROM watches WHERE brand IN ('Seiko', 'Citizen')", 3},
		{"SELECT * FROM watches WHERE price >= 15 AND price <= 180 AND NOT (brand = 'Casio')", 2},
		{"SELECT * FROM watches WHERE id = 3", 1}, // integer compare via index
	}
	for _, tt := range tests {
		res, err := db.Query(tt.sql)
		if err != nil {
			t.Errorf("Query(%q): %v", tt.sql, err)
			continue
		}
		if len(res.Rows) != tt.want {
			t.Errorf("Query(%q) = %d rows, want %d", tt.sql, len(res.Rows), tt.want)
		}
	}
}

func TestSelectProjectionAndStar(t *testing.T) {
	db := watchDB(t)
	res, err := db.Query("SELECT model, price FROM watches WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "model" {
		t.Errorf("columns = %v", res.Columns)
	}
	if f, ok := res.Rows[0][1].RealValue(); !ok || f != 129.99 {
		t.Errorf("price = %v", res.Rows[0][1])
	}
	res, err = db.Query("SELECT * FROM providers")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 {
		t.Errorf("star columns = %v", res.Columns)
	}
}

func TestSelectOrderLimitDistinct(t *testing.T) {
	db := watchDB(t)
	res, err := db.Query("SELECT brand FROM watches ORDER BY price DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if b, _ := res.Rows[0][0].TextValue(); b != "Seiko" {
		t.Errorf("top price brand = %q, want Seiko (Dress 299.5)", b)
	}
	res, err = db.Query("SELECT DISTINCT brand FROM watches ORDER BY brand")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("distinct brands = %v", res.Rows)
	}
	if b, _ := res.Rows[0][0].TextValue(); b != "Casio" {
		t.Errorf("first brand = %q", b)
	}
}

func TestSelectOffset(t *testing.T) {
	db := watchDB(t)
	res, err := db.Query("SELECT brand FROM watches ORDER BY id LIMIT 2 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if b, _ := res.Rows[0][0].TextValue(); b != "Seiko" {
		t.Errorf("first = %q (id 2 is Seiko Dress)", b)
	}
	if b, _ := res.Rows[1][0].TextValue(); b != "Casio" {
		t.Errorf("second = %q", b)
	}
	// Offset past the end yields nothing.
	res, err = db.Query("SELECT brand FROM watches OFFSET 10")
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("past-end offset = %v, %v", res.Rows, err)
	}
	// Offset works with aggregates too.
	res, err = db.Query("SELECT brand, COUNT(*) FROM watches GROUP BY brand ORDER BY brand LIMIT 1 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("aggregate offset = %v", res.Rows)
	}
	if b, _ := res.Rows[0][0].TextValue(); b != "Citizen" {
		t.Errorf("aggregate offset row = %q", b)
	}
	if _, err := db.Query("SELECT brand FROM watches OFFSET x"); err == nil {
		t.Error("bad OFFSET accepted")
	}
}

func TestSelectJoin(t *testing.T) {
	db := watchDB(t)
	res, err := db.Query("SELECT watches.brand, providers.name FROM watches JOIN providers ON watches.pid = providers.id WHERE providers.country = 'JP'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if name, _ := row[1].TextValue(); name != "TimeHouse" {
			t.Errorf("provider = %q", name)
		}
	}
	// Reversed ON order still works.
	res2, err := db.Query("SELECT watches.brand FROM watches JOIN providers ON providers.id = watches.pid WHERE providers.country = 'JP'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 2 {
		t.Errorf("reversed join rows = %v", res2.Rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := watchDB(t)
	n, err := db.Exec("UPDATE watches SET price = 20 WHERE brand = 'Casio'")
	if err != nil || n != 1 {
		t.Fatalf("update: %d, %v", n, err)
	}
	res, _ := db.Query("SELECT price FROM watches WHERE brand = 'Casio'")
	if f, _ := res.Rows[0][0].RealValue(); f != 20 {
		t.Errorf("price after update = %v", res.Rows[0][0])
	}
	n, err = db.Exec("DELETE FROM watches WHERE price > 100")
	if err != nil || n != 3 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	if c, _ := db.RowCount("watches"); c != 1 {
		t.Errorf("rows after delete = %d", c)
	}
	// Index is rebuilt: id lookup still works.
	res, err = db.Query("SELECT brand FROM watches WHERE id = 3")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("post-delete index query: %v, %v", res, err)
	}
	n, err = db.Exec("DELETE FROM watches")
	if err != nil || n != 1 {
		t.Fatalf("unconditional delete: %d, %v", n, err)
	}
}

func TestPrimaryKeyAndUnique(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, sku TEXT UNIQUE, note TEXT)")
	db.MustExec("INSERT INTO t (id, sku, note) VALUES (1, 'a', 'x')")
	if _, err := db.Exec("INSERT INTO t (id, sku, note) VALUES (1, 'b', 'y')"); err == nil {
		t.Error("duplicate primary key accepted")
	}
	if _, err := db.Exec("INSERT INTO t (id, sku, note) VALUES (2, 'a', 'y')"); err == nil {
		t.Error("duplicate unique value accepted")
	}
	if _, err := db.Exec("INSERT INTO t (sku, note) VALUES ('c', 'z')"); err == nil {
		t.Error("NULL primary key accepted")
	}
	// NULLs don't collide on UNIQUE columns.
	db.MustExec("INSERT INTO t (id, note) VALUES (3, 'n1')")
	db.MustExec("INSERT INTO t (id, note) VALUES (4, 'n2')")
}

func TestTypeCoercionErrors(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (n INTEGER, f REAL, b BOOLEAN, s TEXT)")
	bad := []string{
		"INSERT INTO t (n) VALUES ('abc')",
		"INSERT INTO t (n) VALUES (1.5)",
		"INSERT INTO t (f) VALUES ('xyz')",
		"INSERT INTO t (b) VALUES ('maybe')",
		"INSERT INTO t (b) VALUES (2)",
	}
	for _, s := range bad {
		if _, err := db.Exec(s); err == nil {
			t.Errorf("Exec(%q) succeeded", s)
		}
	}
	good := []string{
		"INSERT INTO t (n) VALUES ('42')",   // numeric string into INTEGER
		"INSERT INTO t (f) VALUES (3)",      // integer literal into REAL
		"INSERT INTO t (b) VALUES ('true')", // boolean string
		"INSERT INTO t (s) VALUES (17)",     // number into TEXT
	}
	for _, s := range good {
		if _, err := db.Exec(s); err != nil {
			t.Errorf("Exec(%q): %v", s, err)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INTEGER, b TEXT)")
	db.MustExec("INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, 'y'), (3, NULL)")
	tests := []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM t WHERE a = 1", 1},
		{"SELECT * FROM t WHERE a != 1", 1}, // NULL row excluded
		{"SELECT * FROM t WHERE a IS NULL", 1},
		{"SELECT * FROM t WHERE a IS NOT NULL", 2},
		{"SELECT * FROM t WHERE b IS NULL", 1},
	}
	for _, tt := range tests {
		res, err := db.Query(tt.sql)
		if err != nil {
			t.Errorf("Query(%q): %v", tt.sql, err)
			continue
		}
		if len(res.Rows) != tt.want {
			t.Errorf("Query(%q) = %d rows, want %d", tt.sql, len(res.Rows), tt.want)
		}
	}
}

func TestErrors(t *testing.T) {
	db := watchDB(t)
	cases := []struct {
		name string
		run  func() error
	}{
		{"query non-select", func() error { _, err := db.Query("DELETE FROM watches"); return err }},
		{"exec select", func() error { _, err := db.Exec("SELECT * FROM watches"); return err }},
		{"unknown table", func() error { _, err := db.Query("SELECT * FROM nope"); return err }},
		{"unknown column", func() error { _, err := db.Query("SELECT nope FROM watches"); return err }},
		{"unknown where column", func() error { _, err := db.Query("SELECT * FROM watches WHERE nope = 1"); return err }},
		{"duplicate table", func() error { _, err := db.Exec("CREATE TABLE watches (a TEXT)"); return err }},
		{"arity mismatch", func() error { _, err := db.Exec("INSERT INTO providers (id, name) VALUES (9)"); return err }},
		{"type mismatch compare", func() error { _, err := db.Query("SELECT * FROM watches WHERE brand > 5"); return err }},
		{"like non-text", func() error { _, err := db.Query("SELECT * FROM watches WHERE price LIKE 'x'"); return err }},
		{"ambiguous join column", func() error {
			_, err := db.Query("SELECT id FROM watches JOIN providers ON watches.pid = providers.id")
			return err
		}},
		{"unknown join table ref", func() error {
			_, err := db.Query("SELECT * FROM watches JOIN providers ON nosuch.pid = providers.id")
			return err
		}},
		{"duplicate column def", func() error { _, err := db.Exec("CREATE TABLE z (a TEXT, a TEXT)"); return err }},
		{"two primary keys", func() error {
			_, err := db.Exec("CREATE TABLE z2 (a INTEGER PRIMARY KEY, b INTEGER PRIMARY KEY)")
			return err
		}},
		{"index unknown column", func() error { _, err := db.Exec("CREATE INDEX ON watches (nope)"); return err }},
	}
	for _, c := range cases {
		if c.run() == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestSecondaryIndexUseAndCorrectness(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE big (id INTEGER PRIMARY KEY, grp TEXT, val INTEGER)")
	for i := 0; i < 500; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO big (id, grp, val) VALUES (%d, 'g%d', %d)", i, i%10, i))
	}
	db.MustExec("CREATE INDEX ON big (grp)")
	res, err := db.Query("SELECT val FROM big WHERE grp = 'g3' AND val < 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("indexed query rows = %d, want 10", len(res.Rows))
	}
	for _, row := range res.Rows {
		v, _ := row[0].IntValue()
		if v%10 != 3 || v >= 100 {
			t.Errorf("wrong row %v", row)
		}
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE c (id INTEGER PRIMARY KEY, v TEXT)")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := w*1000 + i
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO c (id, v) VALUES (%d, 'x')", id)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, err := db.Query("SELECT * FROM c WHERE v = 'x' LIMIT 5"); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := db.RowCount("c"); n != 200 {
		t.Fatalf("rows = %d, want 200", n)
	}
}

func TestLikeMatch(t *testing.T) {
	tests := []struct {
		s, p string
		want bool
	}{
		{"Seiko", "Seiko", true},
		{"Seiko", "sei%", true},
		{"Seiko", "%ko", true},
		{"Seiko", "%ei%", true},
		{"Seiko", "S_iko", true},
		{"Seiko", "S_ko", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%%", true},
		{"a%b", "a%b", true}, // % in pattern matches greedily but still works
	}
	for _, tt := range tests {
		if got := likeMatch(tt.s, tt.p); got != tt.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tt.s, tt.p, got, tt.want)
		}
	}
}

// Property: an indexed equality query returns exactly the rows a full scan
// predicate would.
func TestIndexMatchesScanProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		db := New()
		db.MustExec("CREATE TABLE p (id INTEGER PRIMARY KEY, k TEXT, v INTEGER)")
		for i, b := range vals {
			db.MustExec(fmt.Sprintf("INSERT INTO p (id, k, v) VALUES (%d, 'k%d', %d)", i, b%5, b))
		}
		db.MustExec("CREATE INDEX ON p (k)")
		for group := 0; group < 5; group++ {
			indexed, err := db.Query(fmt.Sprintf("SELECT id FROM p WHERE k = 'k%d'", group))
			if err != nil {
				return false
			}
			want := 0
			for _, b := range vals {
				if int(b%5) == group {
					want++
				}
			}
			if len(indexed.Rows) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: ORDER BY yields a non-decreasing (or non-increasing) sequence.
func TestOrderByProperty(t *testing.T) {
	f := func(vals []int16, desc bool) bool {
		db := New()
		db.MustExec("CREATE TABLE o (id INTEGER PRIMARY KEY, v INTEGER)")
		for i, v := range vals {
			db.MustExec(fmt.Sprintf("INSERT INTO o (id, v) VALUES (%d, %d)", i, v))
		}
		dir := ""
		if desc {
			dir = " DESC"
		}
		res, err := db.Query("SELECT v FROM o ORDER BY v" + dir)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			a, _ := res.Rows[i-1][0].IntValue()
			b, _ := res.Rows[i][0].IntValue()
			if desc && a < b || !desc && a > b {
				return false
			}
		}
		return len(res.Rows) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValueAccessors(t *testing.T) {
	if s, ok := Text("x").TextValue(); !ok || s != "x" {
		t.Error("TextValue")
	}
	if i, ok := Int(7).IntValue(); !ok || i != 7 {
		t.Error("IntValue")
	}
	if f, ok := Real(2.5).RealValue(); !ok || f != 2.5 {
		t.Error("RealValue")
	}
	if b, ok := Bool(true).BoolValue(); !ok || !b {
		t.Error("BoolValue")
	}
	if _, ok := NullValue().TextValue(); ok {
		t.Error("null TextValue reported ok")
	}
	if NullValue().String() != "NULL" {
		t.Error("null String")
	}
	if !strings.Contains(Int(5).String(), "5") {
		t.Error("int String")
	}
}
