// Package reldb implements the in-memory relational database engine the S2S
// middleware uses as its structured data source substrate. The paper's
// database-backed attribute mappings carry plain SQL extraction rules (e.g.
// "SELECT aatribute FROM atable WHERE aattribute=avalue", §2.3.1 step 3);
// this engine executes those rules.
//
// Supported: CREATE TABLE / CREATE INDEX, INSERT, SELECT (projection,
// DISTINCT, WHERE, INNER JOIN, ORDER BY, LIMIT), UPDATE, and DELETE with
// typed columns (TEXT, INTEGER, REAL, BOOLEAN), PRIMARY KEY and UNIQUE
// enforcement, and hash indexes used for equality lookups.
package reldb

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqllang"
)

// Value is one typed cell. The zero value is a NULL of unspecified type.
type Value struct {
	// Type is the declared column type of the value; meaningless when Null.
	Type sqllang.ColumnType
	// Null marks SQL NULL.
	Null bool

	text string
	i    int64
	r    float64
	b    bool
}

// Null value constructor.
func NullValue() Value { return Value{Null: true} }

// Text constructs a TEXT value.
func Text(s string) Value { return Value{Type: sqllang.TypeText, text: s} }

// Int constructs an INTEGER value.
func Int(i int64) Value { return Value{Type: sqllang.TypeInteger, i: i} }

// Real constructs a REAL value.
func Real(f float64) Value { return Value{Type: sqllang.TypeReal, r: f} }

// Bool constructs a BOOLEAN value.
func Bool(b bool) Value { return Value{Type: sqllang.TypeBoolean, b: b} }

// String renders the value as SQL-ish text; NULL renders as "NULL".
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case sqllang.TypeText:
		return v.text
	case sqllang.TypeInteger:
		return strconv.FormatInt(v.i, 10)
	case sqllang.TypeReal:
		return strconv.FormatFloat(v.r, 'g', -1, 64)
	case sqllang.TypeBoolean:
		return strconv.FormatBool(v.b)
	default:
		return fmt.Sprintf("Value(%d)", int(v.Type))
	}
}

// TextValue returns the TEXT content; ok is false for other types or NULL.
func (v Value) TextValue() (string, bool) {
	return v.text, !v.Null && v.Type == sqllang.TypeText
}

// IntValue returns the INTEGER content.
func (v Value) IntValue() (int64, bool) {
	return v.i, !v.Null && v.Type == sqllang.TypeInteger
}

// RealValue returns the REAL content.
func (v Value) RealValue() (float64, bool) {
	return v.r, !v.Null && v.Type == sqllang.TypeReal
}

// BoolValue returns the BOOLEAN content.
func (v Value) BoolValue() (bool, bool) {
	return v.b, !v.Null && v.Type == sqllang.TypeBoolean
}

// key returns a canonical string used for index and uniqueness keys.
func (v Value) key() string {
	if v.Null {
		return "\x00NULL"
	}
	return fmt.Sprintf("%d:%s", int(v.Type), v.String())
}

// numeric returns the value as float64 for cross-numeric-type comparison.
func (v Value) numeric() (float64, bool) {
	switch v.Type {
	case sqllang.TypeInteger:
		return float64(v.i), !v.Null
	case sqllang.TypeReal:
		return v.r, !v.Null
	default:
		return 0, false
	}
}

// compare orders two non-null values; returns an error for incomparable
// types. Integers and reals compare numerically across types.
func compare(a, b Value) (int, error) {
	if an, ok := a.numeric(); ok {
		if bn, ok := b.numeric(); ok {
			switch {
			case an < bn:
				return -1, nil
			case an > bn:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if a.Type != b.Type {
		return 0, fmt.Errorf("reldb: cannot compare %s with %s", a.Type, b.Type)
	}
	switch a.Type {
	case sqllang.TypeText:
		return strings.Compare(a.text, b.text), nil
	case sqllang.TypeBoolean:
		switch {
		case a.b == b.b:
			return 0, nil
		case !a.b:
			return -1, nil
		default:
			return 1, nil
		}
	default:
		return 0, fmt.Errorf("reldb: cannot compare values of type %s", a.Type)
	}
}

// coerce converts a parsed literal to a value of the column type.
func coerce(lit sqllang.LiteralExpr, typ sqllang.ColumnType) (Value, error) {
	if lit.Kind == sqllang.LitNull {
		return NullValue(), nil
	}
	switch typ {
	case sqllang.TypeText:
		if lit.Kind != sqllang.LitString {
			// Numbers and booleans coerce to their text form.
			return Text(lit.Text), nil
		}
		return Text(lit.Text), nil
	case sqllang.TypeInteger:
		switch lit.Kind {
		case sqllang.LitNumber:
			i, err := strconv.ParseInt(lit.Text, 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("reldb: %q is not an integer", lit.Text)
			}
			return Int(i), nil
		case sqllang.LitString:
			i, err := strconv.ParseInt(strings.TrimSpace(lit.Text), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("reldb: %q is not an integer", lit.Text)
			}
			return Int(i), nil
		}
	case sqllang.TypeReal:
		switch lit.Kind {
		case sqllang.LitNumber:
			f, err := strconv.ParseFloat(lit.Text, 64)
			if err != nil {
				return Value{}, fmt.Errorf("reldb: %q is not a number", lit.Text)
			}
			return Real(f), nil
		case sqllang.LitString:
			f, err := strconv.ParseFloat(strings.TrimSpace(lit.Text), 64)
			if err != nil {
				return Value{}, fmt.Errorf("reldb: %q is not a number", lit.Text)
			}
			return Real(f), nil
		}
	case sqllang.TypeBoolean:
		if lit.Kind == sqllang.LitBool {
			return Bool(lit.Text == "TRUE"), nil
		}
		if lit.Kind == sqllang.LitString {
			switch strings.ToLower(lit.Text) {
			case "true", "1":
				return Bool(true), nil
			case "false", "0":
				return Bool(false), nil
			}
		}
	}
	return Value{}, fmt.Errorf("reldb: cannot store %s literal %q in a %s column", kindName(lit.Kind), lit.Text, typ)
}

// literalValue converts a literal in a WHERE clause to an untyped-but-typed
// comparison value.
func literalValue(lit sqllang.LiteralExpr) Value {
	switch lit.Kind {
	case sqllang.LitString:
		return Text(lit.Text)
	case sqllang.LitNumber:
		if i, err := strconv.ParseInt(lit.Text, 10, 64); err == nil {
			return Int(i)
		}
		f, _ := strconv.ParseFloat(lit.Text, 64)
		return Real(f)
	case sqllang.LitBool:
		return Bool(lit.Text == "TRUE")
	default:
		return NullValue()
	}
}

func kindName(k sqllang.LiteralKind) string {
	switch k {
	case sqllang.LitString:
		return "string"
	case sqllang.LitNumber:
		return "number"
	case sqllang.LitBool:
		return "boolean"
	case sqllang.LitNull:
		return "NULL"
	default:
		return "unknown"
	}
}
