package reldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sqllang"
)

// DB is an in-memory relational database. All methods are safe for
// concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

// New returns an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*table)}
}

// Result is the outcome of a Query: column names and typed rows.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Exec parses and executes a DDL or DML statement, returning the number of
// rows affected (0 for DDL). SELECT statements are rejected; use Query.
func (db *DB) Exec(sql string) (int, error) {
	stmt, err := sqllang.Parse(sql)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	switch s := stmt.(type) {
	case *sqllang.CreateTable:
		return 0, db.createTable(s)
	case *sqllang.CreateIndex:
		t, err := db.table(s.Table)
		if err != nil {
			return 0, err
		}
		return 0, t.addIndex(s.Column)
	case *sqllang.Insert:
		return db.insert(s)
	case *sqllang.Delete:
		return db.delete(s)
	case *sqllang.Update:
		return db.update(s)
	case *sqllang.Select:
		return 0, fmt.Errorf("reldb: use Query for SELECT statements")
	default:
		return 0, fmt.Errorf("reldb: unsupported statement %T", stmt)
	}
}

// MustExec is Exec but panics on error; for static fixture setup.
func (db *DB) MustExec(sql string) {
	if _, err := db.Exec(sql); err != nil {
		panic(err)
	}
}

// Query parses and executes a SELECT statement.
func (db *DB) Query(sql string) (*Result, error) {
	stmt, err := sqllang.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqllang.Select)
	if !ok {
		return nil, fmt.Errorf("reldb: Query requires a SELECT statement, got %T", stmt)
	}
	return db.QuerySelect(sel)
}

// QuerySelect executes a pre-parsed SELECT statement. Callers that run
// the same statement repeatedly (the extract manager's compiled-rule
// cache) parse once and reuse the AST; execution never mutates it, so
// one statement may run concurrently.
func (db *DB) QuerySelect(sel *sqllang.Select) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.executeSelect(sel)
}

// Tables returns the names of all tables in sorted order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RowCount returns the number of rows in the named table.
func (db *DB) RowCount(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	return len(t.rows), nil
}

func (db *DB) table(name string) (*table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("reldb: table %q does not exist", name)
	}
	return t, nil
}

func (db *DB) createTable(stmt *sqllang.CreateTable) error {
	key := strings.ToLower(stmt.Table)
	if _, exists := db.tables[key]; exists {
		return fmt.Errorf("reldb: table %q already exists", stmt.Table)
	}
	t, err := newTable(stmt)
	if err != nil {
		return err
	}
	db.tables[key] = t
	return nil
}

func (db *DB) insert(stmt *sqllang.Insert) (int, error) {
	t, err := db.table(stmt.Table)
	if err != nil {
		return 0, err
	}
	// Resolve the column list to positions.
	positions := make([]int, 0, len(t.columns))
	if len(stmt.Columns) == 0 {
		for i := range t.columns {
			positions = append(positions, i)
		}
	} else {
		for _, name := range stmt.Columns {
			i, err := t.column(name)
			if err != nil {
				return 0, err
			}
			positions = append(positions, i)
		}
	}
	inserted := 0
	for _, exprRow := range stmt.Rows {
		if len(exprRow) != len(positions) {
			return inserted, fmt.Errorf("reldb: INSERT into %s supplies %d values for %d columns",
				stmt.Table, len(exprRow), len(positions))
		}
		row := make([]Value, len(t.columns))
		for i := range row {
			row[i] = NullValue()
		}
		for i, e := range exprRow {
			lit, ok := e.(sqllang.LiteralExpr)
			if !ok {
				return inserted, fmt.Errorf("reldb: INSERT values must be literals")
			}
			v, err := coerce(lit, t.columns[positions[i]].Type)
			if err != nil {
				return inserted, err
			}
			row[positions[i]] = v
		}
		if t.pk >= 0 && row[t.pk].Null {
			return inserted, fmt.Errorf("reldb: primary key %s.%s cannot be NULL",
				t.name, t.columns[t.pk].Name)
		}
		if err := t.insert(row); err != nil {
			return inserted, err
		}
		inserted++
	}
	return inserted, nil
}

func (db *DB) delete(stmt *sqllang.Delete) (int, error) {
	t, err := db.table(stmt.Table)
	if err != nil {
		return 0, err
	}
	kept := t.rows[:0]
	deleted := 0
	e := &env{tables: []*table{t}, rows: [][]Value{nil}}
	for _, row := range t.rows {
		keep := true
		if stmt.Where != nil {
			e.rows[0] = row
			match, err := evalBool(stmt.Where, e)
			if err != nil {
				return 0, err
			}
			keep = !match
		} else {
			keep = false
		}
		if keep {
			kept = append(kept, row)
		} else {
			deleted++
		}
	}
	t.rows = kept
	t.rebuildIndexes()
	return deleted, nil
}

func (db *DB) update(stmt *sqllang.Update) (int, error) {
	t, err := db.table(stmt.Table)
	if err != nil {
		return 0, err
	}
	type setOp struct {
		col int
		val Value
	}
	ops := make([]setOp, 0, len(stmt.Set))
	for _, a := range stmt.Set {
		col, err := t.column(a.Column)
		if err != nil {
			return 0, err
		}
		lit, ok := a.Value.(sqllang.LiteralExpr)
		if !ok {
			return 0, fmt.Errorf("reldb: UPDATE values must be literals")
		}
		v, err := coerce(lit, t.columns[col].Type)
		if err != nil {
			return 0, err
		}
		ops = append(ops, setOp{col: col, val: v})
	}
	updated := 0
	e := &env{tables: []*table{t}, rows: [][]Value{nil}}
	for i, row := range t.rows {
		if stmt.Where != nil {
			e.rows[0] = row
			match, err := evalBool(stmt.Where, e)
			if err != nil {
				return updated, err
			}
			if !match {
				continue
			}
		}
		for _, op := range ops {
			t.rows[i][op.col] = op.val
		}
		updated++
	}
	if updated > 0 {
		t.rebuildIndexes()
	}
	return updated, nil
}
