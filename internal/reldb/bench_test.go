package reldb

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := New()
	db.MustExec("CREATE TABLE w (id INTEGER PRIMARY KEY, brand TEXT, price REAL)")
	db.MustExec("CREATE INDEX ON w (brand)")
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO w (id, brand, price) VALUES (%d, 'b%d', %d.5)", i, i%10, i))
	}
	return db
}

func BenchmarkInsert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := New()
		db.MustExec("CREATE TABLE w (id INTEGER PRIMARY KEY, v TEXT)")
		for j := 0; j < 1000; j++ {
			db.MustExec(fmt.Sprintf("INSERT INTO w (id, v) VALUES (%d, 'x')", j))
		}
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query("SELECT id FROM w WHERE brand = 'b3'")
		if err != nil || len(res.Rows) != 1000 {
			b.Fatalf("%v %d", err, len(res.Rows))
		}
	}
}

func BenchmarkSelectScanFilter(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query("SELECT id FROM w WHERE price > 5000 AND price < 6000")
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v %d", err, len(res.Rows))
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query("SELECT brand, COUNT(*), AVG(price) FROM w GROUP BY brand")
		if err != nil || len(res.Rows) != 10 {
			b.Fatalf("%v %d", err, len(res.Rows))
		}
	}
}
