package reldb

import (
	"fmt"
	"testing"
	"testing/quick"
)

func aggDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE w (id INTEGER PRIMARY KEY, brand TEXT, price REAL, stock INTEGER)")
	db.MustExec(`INSERT INTO w (id, brand, price, stock) VALUES
		(1, 'Seiko', 100.0, 5),
		(2, 'Seiko', 300.0, 2),
		(3, 'Casio', 20.0, 10),
		(4, 'Casio', 40.0, NULL),
		(5, 'Citizen', 200.0, 7)`)
	return db
}

func TestCountStar(t *testing.T) {
	db := aggDB(t)
	res, err := db.Query("SELECT COUNT(*) FROM w")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].IntValue(); n != 5 {
		t.Fatalf("COUNT(*) = %v", res.Rows[0][0])
	}
	if res.Columns[0] != "COUNT(*)" {
		t.Errorf("column name = %q", res.Columns[0])
	}
	// With WHERE.
	res, err = db.Query("SELECT COUNT(*) FROM w WHERE brand = 'Seiko'")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].IntValue(); n != 2 {
		t.Fatalf("filtered COUNT(*) = %v", res.Rows[0][0])
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	db := aggDB(t)
	res, err := db.Query("SELECT COUNT(stock) FROM w")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].IntValue(); n != 4 {
		t.Fatalf("COUNT(stock) = %v, want 4 (one NULL)", res.Rows[0][0])
	}
}

func TestSumAvgMinMax(t *testing.T) {
	db := aggDB(t)
	res, err := db.Query("SELECT SUM(price), AVG(price), MIN(price), MAX(price), SUM(stock) FROM w")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if f, _ := row[0].RealValue(); f != 660 {
		t.Errorf("SUM = %v", row[0])
	}
	if f, _ := row[1].RealValue(); f != 132 {
		t.Errorf("AVG = %v", row[1])
	}
	if f, _ := row[2].RealValue(); f != 20 {
		t.Errorf("MIN = %v", row[2])
	}
	if f, _ := row[3].RealValue(); f != 300 {
		t.Errorf("MAX = %v", row[3])
	}
	// SUM over INTEGER stays integer.
	if n, ok := row[4].IntValue(); !ok || n != 24 {
		t.Errorf("SUM(stock) = %v", row[4])
	}
}

func TestGroupBy(t *testing.T) {
	db := aggDB(t)
	res, err := db.Query("SELECT brand, COUNT(*), AVG(price) FROM w GROUP BY brand ORDER BY brand")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	first := res.Rows[0]
	if b, _ := first[0].TextValue(); b != "Casio" {
		t.Errorf("first group = %v", first)
	}
	if n, _ := first[1].IntValue(); n != 2 {
		t.Errorf("Casio count = %v", first[1])
	}
	if f, _ := first[2].RealValue(); f != 30 {
		t.Errorf("Casio avg = %v", first[2])
	}
}

func TestGroupByOrderByAggregateNameFails(t *testing.T) {
	db := aggDB(t)
	// ORDER BY must reference an output column; price is not one here.
	if _, err := db.Query("SELECT brand, COUNT(*) FROM w GROUP BY brand ORDER BY price"); err == nil {
		t.Fatal("ORDER BY hidden column accepted")
	}
}

func TestGroupByLimit(t *testing.T) {
	db := aggDB(t)
	res, err := db.Query("SELECT brand, MAX(price) FROM w GROUP BY brand ORDER BY brand LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregateValidation(t *testing.T) {
	db := aggDB(t)
	bad := []string{
		"SELECT brand FROM w GROUP BY price",         // brand not grouped
		"SELECT brand, price FROM w GROUP BY brand",  // price not grouped
		"SELECT * FROM w GROUP BY brand",             // star with group
		"SELECT SUM(brand) FROM w",                   // sum over text
		"SELECT AVG(brand) FROM w",                   // avg over text
		"SELECT COUNT(nosuch) FROM w",                // unknown column
		"SELECT brand, COUNT(*) FROM w GROUP BY nos", // unknown group col
		"SELECT SUM(*) FROM w",                       // star on non-count
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded", q)
		}
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	db := aggDB(t)
	res, err := db.Query("SELECT COUNT(*), SUM(price), MIN(price) FROM w WHERE price > 10000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].IntValue(); n != 0 {
		t.Errorf("COUNT on empty = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].Null || !res.Rows[0][2].Null {
		t.Errorf("SUM/MIN on empty should be NULL: %v", res.Rows[0])
	}
	// GROUP BY with no rows yields no groups.
	res, err = db.Query("SELECT brand, COUNT(*) FROM w WHERE price > 10000 GROUP BY brand")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("empty group rows = %v", res.Rows)
	}
}

func TestMinMaxText(t *testing.T) {
	db := aggDB(t)
	res, err := db.Query("SELECT MIN(brand), MAX(brand) FROM w")
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := res.Rows[0][0].TextValue()
	hi, _ := res.Rows[0][1].TextValue()
	if lo != "Casio" || hi != "Seiko" {
		t.Errorf("MIN/MAX text = %q/%q", lo, hi)
	}
}

func TestGroupByWithJoin(t *testing.T) {
	db := aggDB(t)
	db.MustExec("CREATE TABLE origin (brand_name TEXT, country TEXT)")
	db.MustExec("INSERT INTO origin (brand_name, country) VALUES ('Seiko', 'JP'), ('Casio', 'JP'), ('Citizen', 'JP')")
	res, err := db.Query("SELECT origin.country, COUNT(*) FROM w JOIN origin ON w.brand = origin.brand_name GROUP BY origin.country")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][1].IntValue(); n != 5 {
		t.Errorf("JP count = %v", res.Rows[0][1])
	}
}

// Property: COUNT(*) GROUP BY agrees with a manual tally.
func TestGroupCountProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		db := New()
		db.MustExec("CREATE TABLE p (id INTEGER PRIMARY KEY, g TEXT)")
		tally := map[string]int64{}
		for i, v := range vals {
			g := fmt.Sprintf("g%d", v%4)
			db.MustExec(fmt.Sprintf("INSERT INTO p (id, g) VALUES (%d, '%s')", i, g))
			tally[g]++
		}
		res, err := db.Query("SELECT g, COUNT(*) FROM p GROUP BY g")
		if err != nil {
			return false
		}
		if len(res.Rows) != len(tally) {
			return false
		}
		for _, row := range res.Rows {
			g, _ := row[0].TextValue()
			n, _ := row[1].IntValue()
			if tally[g] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
