package reldb

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/sqllang"
)

// env is the row environment a WHERE expression evaluates against: one
// current row per table in FROM/JOIN order. Callers evaluating the same
// expression over many rows reuse one env and reassign rows, so the
// per-expression memos amortize across the scan.
type env struct {
	tables []*table
	rows   [][]Value
	inSets map[*sqllang.InExpr]*inSet
}

// inSet is the lookup form of an IN list. String literals live in a
// hash set — a text value can only ever equal a string literal, and
// only exactly — while the remaining literals (numbers, booleans) keep
// the linear compare scan, preserving cross-numeric-type coercion.
// Large IN predicates (the planner's semi-join narrowing emits them)
// thus cost O(1) per row instead of O(literals).
type inSet struct {
	text   map[string]bool
	others []Value
}

func buildInSet(x *sqllang.InExpr) *inSet {
	s := &inSet{text: make(map[string]bool, len(x.Values))}
	for _, lit := range x.Values {
		if lit.Kind == sqllang.LitString {
			s.text[lit.Text] = true
		} else {
			s.others = append(s.others, literalValue(lit))
		}
	}
	return s
}

func (s *inSet) contains(v Value) bool {
	if t, ok := v.TextValue(); ok {
		return s.text[t]
	}
	for _, o := range s.others {
		if c, err := compare(v, o); err == nil && c == 0 {
			return true
		}
	}
	return false
}

// inSet returns the memoized lookup form of x, building it on first use.
func (e *env) inSet(x *sqllang.InExpr) *inSet {
	if s := e.inSets[x]; s != nil {
		return s
	}
	s := buildInSet(x)
	if e.inSets == nil {
		e.inSets = map[*sqllang.InExpr]*inSet{}
	}
	e.inSets[x] = s
	return s
}

// lookup resolves a column reference against the environment. Unqualified
// names must be unambiguous across the joined tables.
func (e *env) lookup(ref sqllang.ColumnRef) (Value, error) {
	if ref.Table != "" {
		for ti, t := range e.tables {
			if strings.EqualFold(t.name, ref.Table) {
				ci, err := t.column(ref.Column)
				if err != nil {
					return Value{}, err
				}
				return e.rows[ti][ci], nil
			}
		}
		return Value{}, fmt.Errorf("reldb: unknown table %q in column reference", ref.Table)
	}
	found := -1
	var out Value
	for ti, t := range e.tables {
		if ci, ok := t.colIdx[strings.ToLower(ref.Column)]; ok {
			if found >= 0 {
				return Value{}, fmt.Errorf("reldb: column %q is ambiguous across joined tables", ref.Column)
			}
			found = ti
			out = e.rows[ti][ci]
		}
	}
	if found < 0 {
		return Value{}, fmt.Errorf("reldb: unknown column %q", ref.Column)
	}
	return out, nil
}

// evalBool evaluates a WHERE expression. SQL three-valued logic is
// simplified to two values: any comparison involving NULL is false.
func evalBool(expr sqllang.Expr, e *env) (bool, error) {
	switch x := expr.(type) {
	case *sqllang.BinaryExpr:
		switch x.Op {
		case sqllang.OpAnd:
			l, err := evalBool(x.Left, e)
			if err != nil {
				return false, err
			}
			if !l {
				return false, nil
			}
			return evalBool(x.Right, e)
		case sqllang.OpOr:
			l, err := evalBool(x.Left, e)
			if err != nil {
				return false, err
			}
			if l {
				return true, nil
			}
			return evalBool(x.Right, e)
		default:
			return evalComparison(x, e)
		}
	case *sqllang.NotExpr:
		inner, err := evalBool(x.Inner, e)
		if err != nil {
			return false, err
		}
		return !inner, nil
	case *sqllang.IsNullExpr:
		v, err := evalOperand(x.Operand, e)
		if err != nil {
			return false, err
		}
		return v.Null != x.Negate, nil
	case *sqllang.InExpr:
		v, err := evalOperand(x.Operand, e)
		if err != nil {
			return false, err
		}
		if v.Null {
			return false, nil
		}
		return e.inSet(x).contains(v), nil
	default:
		return false, fmt.Errorf("reldb: expression %s is not a condition", expr)
	}
}

func evalComparison(x *sqllang.BinaryExpr, e *env) (bool, error) {
	left, err := evalOperand(x.Left, e)
	if err != nil {
		return false, err
	}
	right, err := evalOperand(x.Right, e)
	if err != nil {
		return false, err
	}
	if left.Null || right.Null {
		return false, nil
	}
	if x.Op == sqllang.OpLike {
		ls, lok := left.TextValue()
		rs, rok := right.TextValue()
		if !lok || !rok {
			return false, fmt.Errorf("reldb: LIKE requires text operands")
		}
		return likeMatch(ls, rs), nil
	}
	c, err := compare(left, right)
	if err != nil {
		return false, err
	}
	switch x.Op {
	case sqllang.OpEq:
		return c == 0, nil
	case sqllang.OpNe:
		return c != 0, nil
	case sqllang.OpLt:
		return c < 0, nil
	case sqllang.OpGt:
		return c > 0, nil
	case sqllang.OpLe:
		return c <= 0, nil
	case sqllang.OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("reldb: unsupported operator %s", x.Op)
	}
}

func evalOperand(expr sqllang.Expr, e *env) (Value, error) {
	switch x := expr.(type) {
	case sqllang.ColumnRef:
		return e.lookup(x)
	case sqllang.LiteralExpr:
		return literalValue(x), nil
	default:
		return Value{}, fmt.Errorf("reldb: unsupported operand %s", expr)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one rune),
// case-insensitively. Greedy two-pointer match over byte positions:
// advance through literal/_ characters, remember the most recent % and
// where it started consuming, and on mismatch widen that % by one rune.
// Allocation-free — the planner pushes `%literal%` predicates into
// generated SQL, which puts this on the per-row hot path.
func likeMatch(s, pattern string) bool {
	i, j := 0, 0      // byte positions in s, pattern
	star, si := -1, 0 // byte position of the last %, s position it resumes from
	for i < len(s) {
		if j < len(pattern) {
			pc, pw := utf8.DecodeRuneInString(pattern[j:])
			if pc == '%' {
				star, si = j, i
				j += pw
				continue
			}
			sc, sw := utf8.DecodeRuneInString(s[i:])
			if pc == '_' || equalFoldRune(sc, pc) {
				i, j = i+sw, j+pw
				continue
			}
		}
		if star < 0 {
			return false
		}
		_, sw := utf8.DecodeRuneInString(s[si:])
		si += sw
		i, j = si, star+1 // % is one byte wide
	}
	for j < len(pattern) && pattern[j] == '%' {
		j++
	}
	return j == len(pattern)
}

// equalFoldRune is strings.EqualFold's per-rune relation (simple case
// folding) without building the intermediate strings.
func equalFoldRune(a, b rune) bool {
	if a == b {
		return true
	}
	for r := unicode.SimpleFold(a); r != a; r = unicode.SimpleFold(r) {
		if r == b {
			return true
		}
	}
	return false
}

// executeSelect runs a parsed SELECT. Callers hold the read lock.
func (db *DB) executeSelect(sel *sqllang.Select) (*Result, error) {
	base, err := db.table(sel.Table)
	if err != nil {
		return nil, err
	}
	tables := []*table{base}
	for _, j := range sel.Joins {
		jt, err := db.table(j.Table)
		if err != nil {
			return nil, err
		}
		tables = append(tables, jt)
	}

	// Assemble joined row tuples with nested hash joins.
	tuples, err := db.joinTuples(sel, tables)
	if err != nil {
		return nil, err
	}

	// Filter.
	var filtered [][][]Value
	e := &env{tables: tables}
	for _, tuple := range tuples {
		if sel.Where != nil {
			e.rows = tuple
			ok, err := evalBool(sel.Where, e)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		filtered = append(filtered, tuple)
	}

	// Aggregation takes over projection, ordering, and limiting.
	if sqllang.HasAggregate(sel.Columns) || len(sel.GroupBy) > 0 {
		return db.aggregate(sel, tables, filtered)
	}

	// Order.
	if sel.Order != nil {
		ref := sel.Order.Column
		var sortErr error
		sort.SliceStable(filtered, func(i, j int) bool {
			ei := &env{tables: tables, rows: filtered[i]}
			ej := &env{tables: tables, rows: filtered[j]}
			vi, err := ei.lookup(ref)
			if err != nil {
				sortErr = err
				return false
			}
			vj, err := ej.lookup(ref)
			if err != nil {
				sortErr = err
				return false
			}
			if vi.Null != vj.Null {
				return vi.Null // NULLs first
			}
			if vi.Null {
				return false
			}
			c, err := compare(vi, vj)
			if err != nil {
				sortErr = err
				return false
			}
			if sel.Order.Desc {
				return c > 0
			}
			return c < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	// Project.
	result, err := project(sel, tables, filtered)
	if err != nil {
		return nil, err
	}

	// Distinct.
	if sel.Distinct {
		seen := make(map[string]bool, len(result.Rows))
		kept := result.Rows[:0]
		for _, row := range result.Rows {
			var b strings.Builder
			for _, v := range row {
				b.WriteString(v.key())
				b.WriteByte('\x00')
			}
			k := b.String()
			if !seen[k] {
				seen[k] = true
				kept = append(kept, row)
			}
		}
		result.Rows = kept
	}

	// Offset and limit.
	result.Rows = applyOffsetLimit(result.Rows, sel.Offset, sel.Limit)
	return result, nil
}

func applyOffsetLimit(rows [][]Value, offset, limit int) [][]Value {
	if offset > 0 {
		if offset >= len(rows) {
			return nil
		}
		rows = rows[offset:]
	}
	if limit >= 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}

// joinTuples enumerates row tuples across the FROM table and all joins,
// using a hash map on the join key to avoid quadratic nested loops.
func (db *DB) joinTuples(sel *sqllang.Select, tables []*table) ([][][]Value, error) {
	baseRows := db.scanBase(sel, tables[0])
	tuples := make([][][]Value, 0, len(baseRows))
	for _, r := range baseRows {
		tuples = append(tuples, [][]Value{r})
	}
	for ji, j := range sel.Joins {
		right := tables[ji+1]
		// Determine which side of the ON condition refers to the new table.
		rightRef, leftRef := j.Right, j.Left
		if strings.EqualFold(leftRef.Table, right.name) && !strings.EqualFold(rightRef.Table, right.name) {
			rightRef, leftRef = j.Left, j.Right
		}
		rightCol, err := right.column(rightRef.Column)
		if err != nil {
			return nil, err
		}
		// Hash the right table by join key.
		hash := make(map[string][][]Value, len(right.rows))
		for _, row := range right.rows {
			k := row[rightCol].key()
			hash[k] = append(hash[k], row)
		}
		joined := tuples[:0:0]
		prior := tables[:ji+1]
		for _, tuple := range tuples {
			e := &env{tables: prior, rows: tuple}
			lv, err := e.lookup(leftRef)
			if err != nil {
				return nil, err
			}
			for _, rrow := range hash[lv.key()] {
				next := make([][]Value, len(tuple)+1)
				copy(next, tuple)
				next[len(tuple)] = rrow
				joined = append(joined, next)
			}
		}
		tuples = joined
	}
	return tuples, nil
}

// scanBase returns the base table rows, using an index when the WHERE
// clause's top-level conjunction contains an equality on an indexed column.
func (db *DB) scanBase(sel *sqllang.Select, t *table) [][]Value {
	if sel.Where != nil && len(sel.Joins) == 0 {
		if col, val, ok := indexableEquality(sel.Where, t); ok {
			if rowNos, indexed := t.candidateRows(col, val); indexed {
				rows := make([][]Value, 0, len(rowNos))
				for _, n := range rowNos {
					rows = append(rows, t.rows[n])
				}
				return rows
			}
		}
	}
	return t.rows
}

// indexableEquality finds one `col = literal` conjunct whose column has an
// index on t. The full WHERE still runs on the narrowed candidates, so this
// is purely an access-path optimization.
func indexableEquality(expr sqllang.Expr, t *table) (int, Value, bool) {
	switch x := expr.(type) {
	case *sqllang.BinaryExpr:
		switch x.Op {
		case sqllang.OpAnd:
			if col, v, ok := indexableEquality(x.Left, t); ok {
				return col, v, true
			}
			return indexableEquality(x.Right, t)
		case sqllang.OpEq:
			ref, refOK := x.Left.(sqllang.ColumnRef)
			lit, litOK := x.Right.(sqllang.LiteralExpr)
			if !refOK || !litOK {
				// Try the symmetric form literal = col.
				ref, refOK = x.Right.(sqllang.ColumnRef)
				lit, litOK = x.Left.(sqllang.LiteralExpr)
			}
			if !refOK || !litOK {
				return 0, Value{}, false
			}
			if ref.Table != "" && !strings.EqualFold(ref.Table, t.name) {
				return 0, Value{}, false
			}
			col, err := t.column(ref.Column)
			if err != nil {
				return 0, Value{}, false
			}
			if _, hasIdx := t.indexes[col]; !hasIdx {
				return 0, Value{}, false
			}
			// Index keys are typed: coerce the literal to the column type so
			// e.g. WHERE id = 3 hits an INTEGER index.
			v, err := coerce(lit, t.columns[col].Type)
			if err != nil {
				return 0, Value{}, false
			}
			return col, v, true
		}
	}
	return 0, Value{}, false
}

// colPos locates a column in the joined-tuple coordinate space.
type colPos struct{ ti, ci int }

// resolveRef finds a column reference across the joined tables.
func resolveRef(tables []*table, ref sqllang.ColumnRef) (colPos, error) {
	found := false
	var pos colPos
	for ti, t := range tables {
		if ref.Table != "" && !strings.EqualFold(t.name, ref.Table) {
			continue
		}
		if ci, ok := t.colIdx[strings.ToLower(ref.Column)]; ok {
			if found {
				return colPos{}, fmt.Errorf("reldb: column %q is ambiguous", ref.Column)
			}
			pos = colPos{ti, ci}
			found = true
		}
	}
	if !found {
		return colPos{}, fmt.Errorf("reldb: unknown column %q", ref.String())
	}
	return pos, nil
}

// project builds the result columns from the select list.
func project(sel *sqllang.Select, tables []*table, tuples [][][]Value) (*Result, error) {
	res := &Result{}
	var positions []colPos

	if len(sel.Columns) == 0 {
		for ti, t := range tables {
			for ci, c := range t.columns {
				positions = append(positions, colPos{ti, ci})
				name := c.Name
				if len(tables) > 1 {
					name = t.name + "." + c.Name
				}
				res.Columns = append(res.Columns, name)
			}
		}
	} else {
		for _, item := range sel.Columns {
			pos, err := resolveRef(tables, item.Col)
			if err != nil {
				return nil, err
			}
			positions = append(positions, pos)
			res.Columns = append(res.Columns, item.Col.String())
		}
	}

	res.Rows = make([][]Value, 0, len(tuples))
	for _, tuple := range tuples {
		row := make([]Value, len(positions))
		for i, p := range positions {
			row[i] = tuple[p.ti][p.ci]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
