package selector

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/htmldoc"
)

const shop = `<html><body>
<div class="product featured" data-id="1">
  <b class="brand">Seiko</b>
  <span class="model">Dive Auto</span>
  <a href="/w/1" id="link1">details</a>
</div>
<div class="product" data-id="2">
  <b class="brand">Casio</b>
  <span class="model">F91W</span>
  <a href="/w/2">details</a>
</div>
<div class="ad"><b class="brand">FakeBrand</b></div>
<footer><b>not a brand</b></footer>
</body></html>`

func doc(t *testing.T) *htmldoc.Node {
	t.Helper()
	return htmldoc.Parse(shop)
}

func TestSelectByTagClassID(t *testing.T) {
	d := doc(t)
	tests := []struct {
		expr string
		want []string
	}{
		{"div.product b.brand", []string{"Seiko", "Casio"}},
		{"div.product > b.brand", []string{"Seiko", "Casio"}},
		{".brand", []string{"Seiko", "Casio", "FakeBrand"}},
		{"b", []string{"Seiko", "Casio", "FakeBrand", "not a brand"}},
		{"div.featured .brand", []string{"Seiko"}},
		{"#link1", []string{"details"}},
		{"div[data-id='2'] span.model", []string{"F91W"}},
		{"div[data-id] > span", []string{"Dive Auto", "F91W"}},
		{"span.model::text", []string{"Dive Auto", "F91W"}},
		{"div.product a::attr(href)", []string{"/w/1", "/w/2"}},
		{"div.nosuch b", nil},
		{"*[data-id='1'] b", []string{"Seiko"}},
		{"div[data-id=1] b", []string{"Seiko"}}, // unquoted value
	}
	for _, tt := range tests {
		s, err := Compile(tt.expr)
		if err != nil {
			t.Errorf("Compile(%q): %v", tt.expr, err)
			continue
		}
		got := s.Extract(d)
		if len(got) != len(tt.want) {
			t.Errorf("Extract(%q) = %v, want %v", tt.expr, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Extract(%q)[%d] = %q, want %q", tt.expr, i, got[i], tt.want[i])
			}
		}
	}
}

func TestChildVsDescendant(t *testing.T) {
	d := htmldoc.Parse(`<div class="a"><p><b>deep</b></p><b>shallow</b></div>`)
	if got := MustCompile("div.a > b").Extract(d); len(got) != 1 || got[0] != "shallow" {
		t.Errorf("child = %v", got)
	}
	if got := MustCompile("div.a b").Extract(d); len(got) != 2 {
		t.Errorf("descendant = %v", got)
	}
}

func TestNoDuplicateMatches(t *testing.T) {
	// Nested matching containers must not yield a node twice.
	d := htmldoc.Parse(`<div class="x"><div class="x"><b>once</b></div></div>`)
	if got := MustCompile("div.x b").Extract(d); len(got) != 1 {
		t.Fatalf("got = %v", got)
	}
}

func TestAttrExtractorSkipsMissing(t *testing.T) {
	d := htmldoc.Parse(`<a href="/x">a</a><a>b</a>`)
	if got := MustCompile("a::attr(href)").Extract(d); len(got) != 1 || got[0] != "/x" {
		t.Fatalf("got = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"::text",
		"div::paint",
		"div::attr()",
		"div[",
		"div[attr='x",
		"div..double",
		"#",
		".",
		"div $ b",
		"> b",
	}
	for _, expr := range bad {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded", expr)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile("::")
}

func TestExtractHTML(t *testing.T) {
	got := MustCompile("b.brand").ExtractHTML(shop)
	if len(got) != 3 {
		t.Fatalf("got = %v", got)
	}
}

func TestClassListMatching(t *testing.T) {
	d := htmldoc.Parse(`<div class="a b c">x</div><div class="ab">y</div>`)
	if got := MustCompile("div.b").Extract(d); len(got) != 1 || got[0] != "x" {
		t.Fatalf("got = %v (class list must match whole tokens)", got)
	}
}

// Property: every generated product row is found by the selector, in order.
func TestSelectorCompleteProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) > 30 {
			vals = vals[:30]
		}
		var b strings.Builder
		b.WriteString("<html><body>")
		for i, v := range vals {
			fmt.Fprintf(&b, `<div class="p"><span class="v" data-n="%d">val%d</span></div>`, i, v)
		}
		b.WriteString("</body></html>")
		got := MustCompile("div.p > span.v::text").ExtractHTML(b.String())
		if len(got) != len(vals) {
			return false
		}
		for i, v := range vals {
			if got[i] != fmt.Sprintf("val%d", v) {
				return false
			}
		}
		ids := MustCompile("span.v::attr(data-n)").ExtractHTML(b.String())
		return len(ids) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzCompile checks the selector compiler never panics.
func FuzzCompile(f *testing.F) {
	for _, s := range []string{
		"div.product > b.brand::text",
		"a::attr(href)",
		"*[data-id='1'] span",
		"#id.class[attr=v]",
	} {
		f.Add(s)
	}
	d := htmldoc.Parse(shop)
	f.Fuzz(func(t *testing.T, expr string) {
		s, err := Compile(expr)
		if err != nil {
			return
		}
		_ = s.Extract(d)
	})
}
