// Package selector implements a CSS-selector wrapper language over the
// htmldoc DOM — the style of web extraction rule that succeeded the WebL
// generation of wrappers the paper cites (W4F, Caméléon). The middleware
// accepts it as an alternative rule language for web data sources, which
// makes the WebL-vs-selector comparison an ablation (experiment E13).
//
// Grammar:
//
//	selector   = compound { combinator compound } [ "::" extractor ]
//	combinator = " " (descendant) | ">" (child)
//	compound   = [ tag ] { "." class | "#" id | "[" attr [ "=" value ] "]" }
//	extractor  = "text" | "attr(" name ")"
//
// Examples: "div.product > b.brand::text", "span[data-id='3']",
// "a::attr(href)". The default extractor is ::text (visible text).
package selector

import (
	"fmt"
	"strings"

	"repro/internal/htmldoc"
)

// Selector is a compiled selector expression.
type Selector struct {
	expr  string
	parts []compound
	// attrName is the ::attr(name) extractor; empty means ::text.
	attrName string
}

// compound is one compound selector plus the combinator linking it to the
// previous one.
type compound struct {
	child bool // true for '>', false for descendant
	tag   string
	conds []condition
}

type condKind int

const (
	condClass condKind = iota + 1
	condID
	condAttrExists
	condAttrEquals
)

type condition struct {
	kind  condKind
	name  string
	value string
}

// MustCompile is Compile but panics on error.
func MustCompile(expr string) *Selector {
	s, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return s
}

// Compile parses a selector expression.
func Compile(expr string) (*Selector, error) {
	trimmed := strings.TrimSpace(expr)
	if trimmed == "" {
		return nil, fmt.Errorf("selector: empty expression")
	}
	sel := &Selector{expr: trimmed}

	// Split off the ::extractor suffix.
	body := trimmed
	if idx := strings.LastIndex(body, "::"); idx >= 0 {
		ext := strings.TrimSpace(body[idx+2:])
		body = strings.TrimSpace(body[:idx])
		switch {
		case ext == "text":
			// default
		case strings.HasPrefix(ext, "attr(") && strings.HasSuffix(ext, ")"):
			name := strings.TrimSpace(ext[5 : len(ext)-1])
			if name == "" {
				return nil, fmt.Errorf("selector: %q: empty attribute in ::attr()", expr)
			}
			sel.attrName = name
		default:
			return nil, fmt.Errorf("selector: %q: unknown extractor %q", expr, ext)
		}
		if body == "" {
			return nil, fmt.Errorf("selector: %q: extractor without a selector", expr)
		}
	}

	// Tokenize into compounds and combinators.
	p := &selParser{input: body}
	for {
		p.skipSpace()
		if p.pos >= len(p.input) {
			break
		}
		child := false
		if len(sel.parts) > 0 && p.input[p.pos] == '>' {
			child = true
			p.pos++
			p.skipSpace()
		}
		c, err := p.compound()
		if err != nil {
			return nil, fmt.Errorf("selector: %q: %w", expr, err)
		}
		c.child = child
		sel.parts = append(sel.parts, c)
	}
	if len(sel.parts) == 0 {
		return nil, fmt.Errorf("selector: %q selects nothing", expr)
	}
	return sel, nil
}

type selParser struct {
	input string
	pos   int
}

func (p *selParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func isSelNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '-' || c == '_'
}

func (p *selParser) name() (string, error) {
	start := p.pos
	for p.pos < len(p.input) && isSelNameChar(p.input[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected a name at offset %d", p.pos)
	}
	return p.input[start:p.pos], nil
}

func (p *selParser) compound() (compound, error) {
	var c compound
	// Optional tag (or * wildcard).
	if p.pos < len(p.input) && p.input[p.pos] == '*' {
		p.pos++
	} else if p.pos < len(p.input) && isSelNameChar(p.input[p.pos]) {
		tag, err := p.name()
		if err != nil {
			return c, err
		}
		c.tag = strings.ToLower(tag)
	}
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case '.':
			p.pos++
			name, err := p.name()
			if err != nil {
				return c, err
			}
			c.conds = append(c.conds, condition{kind: condClass, name: name})
		case '#':
			p.pos++
			name, err := p.name()
			if err != nil {
				return c, err
			}
			c.conds = append(c.conds, condition{kind: condID, name: name})
		case '[':
			p.pos++
			name, err := p.name()
			if err != nil {
				return c, err
			}
			cond := condition{kind: condAttrExists, name: strings.ToLower(name)}
			if p.pos < len(p.input) && p.input[p.pos] == '=' {
				p.pos++
				val, err := p.attrValue()
				if err != nil {
					return c, err
				}
				cond.kind = condAttrEquals
				cond.value = val
			}
			if p.pos >= len(p.input) || p.input[p.pos] != ']' {
				return c, fmt.Errorf("unterminated attribute condition")
			}
			p.pos++
			c.conds = append(c.conds, cond)
		default:
			if c.tag == "" && len(c.conds) == 0 {
				return c, fmt.Errorf("unexpected character %q at offset %d", p.input[p.pos], p.pos)
			}
			return c, nil
		}
	}
	if c.tag == "" && len(c.conds) == 0 {
		return c, fmt.Errorf("empty compound selector")
	}
	return c, nil
}

func (p *selParser) attrValue() (string, error) {
	if p.pos < len(p.input) && (p.input[p.pos] == '\'' || p.input[p.pos] == '"') {
		quote := p.input[p.pos]
		p.pos++
		end := strings.IndexByte(p.input[p.pos:], quote)
		if end < 0 {
			return "", fmt.Errorf("unterminated quoted value")
		}
		val := p.input[p.pos : p.pos+end]
		p.pos += end + 1
		return val, nil
	}
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != ']' {
		p.pos++
	}
	return p.input[start:p.pos], nil
}

// matches reports whether a node satisfies one compound selector.
func (c compound) matches(n *htmldoc.Node) bool {
	if n.Tag == "" {
		return false
	}
	if c.tag != "" && n.Tag != c.tag {
		return false
	}
	for _, cond := range c.conds {
		switch cond.kind {
		case condClass:
			if !hasClass(n, cond.name) {
				return false
			}
		case condID:
			if v, ok := n.Attr("id"); !ok || v != cond.name {
				return false
			}
		case condAttrExists:
			if _, ok := n.Attr(cond.name); !ok {
				return false
			}
		case condAttrEquals:
			if v, ok := n.Attr(cond.name); !ok || v != cond.value {
				return false
			}
		}
	}
	return true
}

func hasClass(n *htmldoc.Node, class string) bool {
	v, ok := n.Attr("class")
	if !ok {
		return false
	}
	for _, f := range strings.Fields(v) {
		if f == class {
			return true
		}
	}
	return false
}

// Select returns the nodes matched by the selector, in document order.
func (s *Selector) Select(root *htmldoc.Node) []*htmldoc.Node {
	cur := []*htmldoc.Node{root}
	for _, part := range s.parts {
		var next []*htmldoc.Node
		seen := map[*htmldoc.Node]bool{}
		for _, base := range cur {
			if part.child {
				for _, child := range base.Children {
					if part.matches(child) && !seen[child] {
						seen[child] = true
						next = append(next, child)
					}
				}
				continue
			}
			var walk func(*htmldoc.Node)
			walk = func(n *htmldoc.Node) {
				for _, child := range n.Children {
					if part.matches(child) && !seen[child] {
						seen[child] = true
						next = append(next, child)
					}
					walk(child)
				}
			}
			walk(base)
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// Extract returns the selected values: visible text by default, or the
// named attribute with ::attr(name). Nodes without the attribute are
// skipped.
func (s *Selector) Extract(root *htmldoc.Node) []string {
	nodes := s.Select(root)
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if s.attrName != "" {
			if v, ok := n.Attr(s.attrName); ok {
				out = append(out, v)
			}
			continue
		}
		out = append(out, n.VisibleText())
	}
	return out
}

// ExtractHTML parses src and extracts in one step.
func (s *Selector) ExtractHTML(src string) []string {
	return s.Extract(htmldoc.Parse(src))
}

// String returns the source expression.
func (s *Selector) String() string { return s.expr }
