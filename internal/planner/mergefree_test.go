package planner_test

import (
	"testing"

	"repro/internal/datasource"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/planner"
)

// TestMergeFreeOutcomesMatchObs keeps the planner's verdict constants in
// lockstep with obs.MergeFreeOutcomes (the drift-tested label list for
// s2s_planner_mergefree_total); obs cannot import the planner, so the
// values are mirrored there.
func TestMergeFreeOutcomesMatchObs(t *testing.T) {
	want := []string{
		planner.MergeFreeProved, planner.MergeFreeUnmappedAttr,
		planner.MergeFreeRelations, planner.MergeFreeClassKey,
		planner.MergeFreeMultiGroup,
	}
	if len(obs.MergeFreeOutcomes) != len(want) {
		t.Fatalf("obs.MergeFreeOutcomes has %d values, planner declares %d", len(obs.MergeFreeOutcomes), len(want))
	}
	for i, v := range want {
		if obs.MergeFreeOutcomes[i] != v {
			t.Errorf("obs.MergeFreeOutcomes[%d] = %q, want %q", i, obs.MergeFreeOutcomes[i], v)
		}
	}
}

// span builds a one-source schema plan over the given attribute IDs.
func span(sourceID string, attrs ...string) mapping.SourcePlan {
	sp := mapping.SourcePlan{Source: datasource.Definition{ID: sourceID}}
	for _, a := range attrs {
		sp.Entries = append(sp.Entries, mapping.Entry{AttributeID: a, SourceID: sourceID})
	}
	return sp
}

// TestProveMergeFree walks one schema shape per proof outcome: the flat
// fixture proves, and each condition (unmapped attribute, relations on
// either endpoint, class keys, multi-group sources) declines with its
// own labeled outcome.
func TestProveMergeFree(t *testing.T) {
	flat := ontology.PaperFlat()
	paper := ontology.Paper()
	noKeys := map[string]string{}

	cases := []struct {
		name    string
		ont     *ontology.Ontology
		keys    map[string]string
		plans   []mapping.SourcePlan
		outcome string
	}{
		{
			name: "flat single-chain proves",
			ont:  flat, keys: noKeys,
			plans: []mapping.SourcePlan{
				span("db_000", "thing.product.brand", "thing.product.watch.case"),
				span("xml_000", "thing.product.brand", "thing.product.model"),
			},
			outcome: planner.MergeFreeProved,
		},
		{
			name: "no ontology",
			ont:  nil, keys: noKeys,
			plans:   []mapping.SourcePlan{span("db_000", "thing.product.brand")},
			outcome: planner.MergeFreeUnmappedAttr,
		},
		{
			name: "unmapped attribute",
			ont:  flat, keys: noKeys,
			plans:   []mapping.SourcePlan{span("db_000", "thing.gadget.mass")},
			outcome: planner.MergeFreeUnmappedAttr,
		},
		{
			name: "relation on entry class chain",
			ont:  paper, keys: noKeys,
			// watch inherits product's hasProvider relation.
			plans:   []mapping.SourcePlan{span("db_000", "thing.product.watch.case")},
			outcome: planner.MergeFreeRelations,
		},
		{
			name: "entry class is a relation target",
			ont:  paper, keys: noKeys,
			// provider declares nothing, but product points at it.
			plans:   []mapping.SourcePlan{span("db_000", "thing.provider.name")},
			outcome: planner.MergeFreeRelations,
		},
		{
			name: "class key comparable with entry class",
			ont:  flat,
			keys: map[string]string{"product": "thing.product.model"},
			plans: []mapping.SourcePlan{
				span("db_000", "thing.product.watch.case"),
			},
			outcome: planner.MergeFreeClassKey,
		},
		{
			name: "class key on unrelated class still declines its chain",
			ont:  flat,
			keys: map[string]string{"provider": "thing.provider.name"},
			plans: []mapping.SourcePlan{
				span("db_000", "thing.provider.country"),
			},
			outcome: planner.MergeFreeClassKey,
		},
		{
			name: "class key elsewhere does not block a disjoint chain",
			ont:  flat,
			keys: map[string]string{"provider": "thing.provider.name"},
			plans: []mapping.SourcePlan{
				span("db_000", "thing.product.brand", "thing.product.price"),
			},
			outcome: planner.MergeFreeProved,
		},
		{
			name: "source spanning two lineage chains",
			ont:  flat, keys: noKeys,
			plans: []mapping.SourcePlan{
				span("db_000", "thing.product.brand", "thing.provider.name"),
			},
			outcome: planner.MergeFreeMultiGroup,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := planner.ProveMergeFree(tc.ont, tc.keys, tc.plans)
			if v.Outcome != tc.outcome {
				t.Fatalf("outcome = %s (%s), want %s", v.Outcome, v.Detail, tc.outcome)
			}
			if v.OK != (tc.outcome == planner.MergeFreeProved) {
				t.Fatalf("OK = %v inconsistent with outcome %s", v.OK, v.Outcome)
			}
			if !v.OK && v.Detail == "" {
				t.Fatalf("declined verdict %s carries no detail", v.Outcome)
			}
		})
	}
}

// TestProveMergeFreeSubsetStable asserts the chain-subset property the
// barrier-free path relies on: once a schema proves merge-free, every
// entry subset the planner's projection pruning could produce proves
// too — the verdict computed on the unrewritten schema stays valid for
// the rewritten one.
func TestProveMergeFreeSubsetStable(t *testing.T) {
	flat := ontology.PaperFlat()
	full := span("xml_000",
		"thing.product.brand", "thing.product.model",
		"thing.product.watch.case", "thing.product.watch.movement")
	if v := planner.ProveMergeFree(flat, nil, []mapping.SourcePlan{full}); !v.OK {
		t.Fatalf("full schema: %s (%s)", v.Outcome, v.Detail)
	}
	n := len(full.Entries)
	for mask := 0; mask < 1<<n; mask++ {
		sub := mapping.SourcePlan{Source: full.Source}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub.Entries = append(sub.Entries, full.Entries[i])
			}
		}
		if v := planner.ProveMergeFree(flat, nil, []mapping.SourcePlan{sub}); !v.OK {
			t.Fatalf("subset %b declined: %s (%s)", mask, v.Outcome, v.Detail)
		}
	}
}
