package planner_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/planner"
	"repro/internal/sqllang"
	"repro/internal/workload"
)

// keyedWorld builds a middleware over a world and declares the watch
// class key that makes records mergeable across sources.
func keyedWorld(t *testing.T, world *workload.World, opts extract.Options) *core.Middleware {
	t.Helper()
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: extract.FromCatalog(world.Catalog),
		Extract:  opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	if err := mw.SetClassKey("watch", "thing.product.model"); err != nil {
		t.Fatal(err)
	}
	return mw
}

// TestPlannerSemiJoinDecision covers planner v3 detection: a class key
// blocks pushdown everywhere, but a group missing the constrained
// attribute — whose own instances therefore can never match — is marked
// semi-join-narrowable instead of plainly declined.
func TestPlannerSemiJoinDecision(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, WebSources: 1, RecordsPerSource: 5, Seed: 33,
	})
	mw := keyedWorld(t, world, extract.Options{})
	res := rewriteFor(t, mw, "SELECT product WHERE water_resistance >= 100")

	// The db group maps water_resistance: its records can fail the
	// condition locally yet merge into a passing instance, so it stays a
	// plain class-key decline.
	d := decisionFor(t, res, "db_000", "thing.product.brand")
	if d.Action != planner.ActionDecline || !strings.Contains(d.Detail, "class key") {
		t.Errorf("db decision = %s (%s), want class-key decline", d.Action, d.Detail)
	}

	// The web group does not map water_resistance: semi-join.
	d = decisionFor(t, res, "web_000", "thing.product.brand")
	if d.Action != planner.ActionSemiJoin {
		t.Fatalf("web decision = %s (%s), want %s", d.Action, d.Detail, planner.ActionSemiJoin)
	}
	if !strings.Contains(d.Detail, "narrowable via thing.product.model") {
		t.Errorf("semijoin detail = %q, want the key attribute named", d.Detail)
	}
	if res.Stats.SemiJoinsPlanned != 1 {
		t.Errorf("SemiJoinsPlanned = %d, want 1", res.Stats.SemiJoinsPlanned)
	}

	var web *mapping.SourcePlan
	for i := range res.Plans {
		if res.Plans[i].Source.ID == "web_000" {
			web = &res.Plans[i]
		}
	}
	if web == nil || len(web.SemiJoins) != 1 {
		t.Fatalf("web_000 semi-joins = %+v, want exactly one", web)
	}
	sj := web.SemiJoins[0]
	if sj.KeyAttribute != "thing.product.model" {
		t.Errorf("KeyAttribute = %q", sj.KeyAttribute)
	}
	if sj.SQL {
		t.Error("web rules are not SQL; SQL narrowing must not be offered")
	}
	if len(sj.Entries) != 4 {
		t.Errorf("semi-join covers %d entries, want the 4 product attributes", len(sj.Entries))
	}
	if got := web.Entries[sj.KeyEntry].AttributeID; !strings.EqualFold(got, "thing.product.model") {
		t.Errorf("KeyEntry resolves to %q, want the model entry", got)
	}
	if len(sj.EligibleConds) != 1 || sj.EligibleConds[0] != 0 {
		t.Errorf("EligibleConds = %v, want [0] (the unmapped water_resistance condition)", sj.EligibleConds)
	}
}

// TestPlannerSemiJoinSQLNative checks that a database group whose rules
// are plain single-scan SELECTs over one row set gets native SQL
// narrowing: the extractor can append a typed IN on the key column.
func TestPlannerSemiJoinSQLNative(t *testing.T) {
	world := workload.MustGenerateSemiJoin(workload.SemiJoinSpec{
		DirectoryRecords: 4, DetailSources: 1, DetailRecords: 10, Seed: 5,
	})
	mw := keyedWorld(t, world, extract.Options{})
	res := rewriteFor(t, mw, "SELECT product WHERE water_resistance >= 100")

	d := decisionFor(t, res, "detail_000", "thing.product.model")
	if d.Action != planner.ActionSemiJoin {
		t.Fatalf("detail decision = %s (%s), want %s", d.Action, d.Detail, planner.ActionSemiJoin)
	}
	for _, sp := range res.Plans {
		if sp.Source.ID != "detail_000" {
			continue
		}
		if len(sp.SemiJoins) != 1 {
			t.Fatalf("detail_000 semi-joins = %d, want 1", len(sp.SemiJoins))
		}
		sj := sp.SemiJoins[0]
		if !sj.SQL || sj.KeyColumn != "model" {
			t.Errorf("SQL narrowing = %v on column %q, want native narrowing on model", sj.SQL, sj.KeyColumn)
		}
	}
	d = decisionFor(t, res, "dir", "thing.product.model")
	if d.Action != planner.ActionDecline {
		t.Errorf("directory decision = %s (%s), want decline (it maps the constrained attribute)", d.Action, d.Detail)
	}
}

// TestPlannerSemiJoinGates drives the narrowability gates: a group
// that does not map the declared key, or maps it ambiguously, stays a
// plain decline.
func TestPlannerSemiJoinGates(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{DBSources: 1, RecordsPerSource: 4, Seed: 8})
	mw := keyedWorld(t, world, extract.Options{})

	// A source mapping brand and case but not the model key.
	if err := mw.RegisterSource(datasource.Definition{
		ID: "nokey", Kind: datasource.KindText, Path: "nokey.txt",
	}); err != nil {
		t.Fatal(err)
	}
	for attr, re := range map[string]string{
		"thing.product.brand":      `brand=([A-Za-z]+)`,
		"thing.product.watch.case": `case=([a-z-]+)`,
	} {
		if err := mw.RegisterMapping(mapping.Entry{
			AttributeID: attr, SourceID: "nokey",
			Rule: mapping.Rule{Language: mapping.LangRegex, Code: re},
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := rewriteFor(t, mw, "SELECT product WHERE water_resistance >= 100")
	d := decisionFor(t, res, "nokey", "thing.product.brand")
	if d.Action != planner.ActionDecline || !strings.Contains(d.Detail, "does not map the key attribute") {
		t.Errorf("nokey decision = %s (%s), want key-missing decline", d.Action, d.Detail)
	}

	// A group of pure product attributes when the key is declared on the
	// watch subclass only: the key blocks pushdown (the classes are
	// comparable) but would never merge this group's product instances,
	// so narrowing by it is meaningless and the planner declines.
	if err := mw.RegisterSource(datasource.Definition{
		ID: "superclass", Kind: datasource.KindText, Path: "superclass.txt",
	}); err != nil {
		t.Fatal(err)
	}
	for attr, re := range map[string]string{
		"thing.product.brand": `brand=([A-Za-z]+)`,
		"thing.product.model": `model=\[([^\]]+)\]`,
	} {
		if err := mw.RegisterMapping(mapping.Entry{
			AttributeID: attr, SourceID: "superclass",
			Rule: mapping.Rule{Language: mapping.LangRegex, Code: re},
		}); err != nil {
			t.Fatal(err)
		}
	}
	res = rewriteFor(t, mw, "SELECT product WHERE water_resistance >= 100")
	d = decisionFor(t, res, "superclass", "thing.product.brand")
	if d.Action != planner.ActionDecline || !strings.Contains(d.Detail, "comparable class") {
		t.Errorf("superclass decision = %s (%s), want comparable-class decline", d.Action, d.Detail)
	}
}

// TestNarrowSQL unit-tests the IN-predicate rewriter, including the
// typed-literal emission and the conservative rejections.
func TestNarrowSQL(t *testing.T) {
	parseOK := func(t *testing.T, code string) {
		t.Helper()
		if _, err := sqllang.Parse(code); err != nil {
			t.Fatalf("narrowed SQL does not parse: %v\n%s", err, code)
		}
	}

	t.Run("plain select keeps order and appends IN", func(t *testing.T) {
		got, ok := planner.NarrowSQL("SELECT model FROM watches ORDER BY id", "model", []string{"Dive 1", "Dress 2"})
		if !ok {
			t.Fatal("narrowing rejected")
		}
		parseOK(t, got)
		for _, want := range []string{"IN ('Dive 1', 'Dress 2')", "ORDER BY id"} {
			if !strings.Contains(got, want) {
				t.Errorf("narrowed SQL %q missing %q", got, want)
			}
		}
	})

	t.Run("existing WHERE is preserved under AND", func(t *testing.T) {
		got, ok := planner.NarrowSQL("SELECT model FROM watches WHERE price > 5", "model", []string{"X"})
		if !ok {
			t.Fatal("narrowing rejected")
		}
		parseOK(t, got)
		if !strings.Contains(got, "price > 5") || !strings.Contains(got, "AND") || !strings.Contains(got, "IN ('X')") {
			t.Errorf("narrowed SQL = %q, want original predicate ANDed with the IN", got)
		}
	})

	t.Run("numeric values match both TEXT and numeric columns", func(t *testing.T) {
		got, ok := planner.NarrowSQL("SELECT model FROM watches", "model", []string{"10.5"})
		if !ok {
			t.Fatal("narrowing rejected")
		}
		parseOK(t, got)
		if !strings.Contains(got, "IN ('10.5', 10.5)") {
			t.Errorf("narrowed SQL = %q, want string and numeric literals for 10.5", got)
		}
	})

	t.Run("boolean values match both spellings", func(t *testing.T) {
		got, ok := planner.NarrowSQL("SELECT flag FROM watches", "flag", []string{"true"})
		if !ok {
			t.Fatal("narrowing rejected")
		}
		parseOK(t, got)
		if !strings.Contains(got, "'true'") || !strings.Contains(got, "TRUE") {
			t.Errorf("narrowed SQL = %q, want string and boolean literals", got)
		}
	})

	t.Run("qualified key column splits into table.column", func(t *testing.T) {
		got, ok := planner.NarrowSQL("SELECT watches.model FROM watches", "watches.model", []string{"X"})
		if !ok {
			t.Fatal("narrowing rejected")
		}
		parseOK(t, got)
		if !strings.Contains(got, "watches.model IN") {
			t.Errorf("narrowed SQL = %q, want a qualified operand", got)
		}
	})

	rejects := []struct {
		name, code string
		values     []string
	}{
		{"non-select code", "not sql at all", []string{"X"}},
		{"control characters", "SELECT model FROM watches", []string{"a\nb"}},
		{"exponent-form number would compare unequal", "SELECT model FROM watches", []string{"1e+06"}},
		{"negative number outside the safe spelling", "SELECT model FROM watches", []string{"-5"}},
		{"all values empty", "SELECT model FROM watches", []string{""}},
	}
	for _, tc := range rejects {
		t.Run("rejects "+tc.name, func(t *testing.T) {
			if got, ok := planner.NarrowSQL(tc.code, "model", tc.values); ok {
				t.Errorf("narrowing accepted: %q", got)
			}
		})
	}
}

// TestSemiJoinEquivalence extends the pushdown soundness fixture to
// planner v3: with a class key declared, every query must produce
// byte-identical output and identical error lists with semi-join
// narrowing enabled and disabled — materializing and streaming — across
// mixed source kinds, a pure-database semi-join world, and a capped
// seed that forces the fallback.
func TestSemiJoinEquivalence(t *testing.T) {
	worlds := []struct {
		name  string
		world *workload.World
		opts  extract.Options
	}{
		{"mixed kinds", workload.MustGenerate(workload.Spec{
			DBSources: 2, XMLSources: 1, WebSources: 2, TextSources: 1,
			RecordsPerSource: 12, Seed: 21,
		}), extract.Options{}},
		{"database semi-join world", workload.MustGenerateSemiJoin(workload.SemiJoinSpec{
			DirectoryRecords: 6, DetailSources: 3, DetailRecords: 40, Seed: 22,
		}), extract.Options{}},
		{"seed over the value cap", workload.MustGenerateSemiJoin(workload.SemiJoinSpec{
			DirectoryRecords: 8, DetailSources: 2, DetailRecords: 30, Seed: 23,
		}), extract.Options{SemiJoinMaxValues: 3}},
		{"web-only world narrows on an empty seed", workload.MustGenerate(workload.Spec{
			WebSources: 2, RecordsPerSource: 10, Seed: 24,
		}), extract.Options{}},
	}
	queries := []string{
		"SELECT product",
		"SELECT product WHERE water_resistance >= 100",
		"SELECT watch WHERE water_resistance >= 150",
		"SELECT product WHERE brand = 'Seiko' AND water_resistance >= 50",
		"SELECT product WHERE water_resistance >= 100 AND price > 100",
		"SELECT product WHERE model LIKE 'D%'",
	}
	ctx := context.Background()
	for _, w := range worlds {
		t.Run(w.name, func(t *testing.T) {
			narrowedOpts, plainOpts := w.opts, w.opts
			plainOpts.DisableSemiJoin = true
			narrowed := keyedWorld(t, w.world, narrowedOpts)
			plain := keyedWorld(t, w.world, plainOpts)
			for _, q := range queries {
				for _, format := range []instance.Format{instance.FormatText, instance.FormatJSON} {
					a, errA := narrowed.QueryString(ctx, q, format)
					b, errB := plain.QueryString(ctx, q, format)
					if (errA == nil) != (errB == nil) || (errA != nil && errA.Error() != errB.Error()) {
						t.Fatalf("%s: error divergence: semijoin=%v plain=%v", q, errA, errB)
					}
					if a != b {
						t.Errorf("%s (%v): output diverges with semi-join narrowing\n--- narrowed ---\n%s\n--- plain ---\n%s", q, format, a, b)
					}
				}
				ra, errA := narrowed.Query(ctx, q)
				rb, errB := plain.Query(ctx, q)
				if errA != nil || errB != nil {
					t.Fatalf("%s: %v / %v", q, errA, errB)
				}
				if got, want := fmt.Sprint(ra.Errors), fmt.Sprint(rb.Errors); got != want {
					t.Errorf("%s: source errors diverge: %s vs %s", q, got, want)
				}

				// The streaming path shares the wave split; it must stay
				// byte-identical to itself without narrowing and to the
				// materializing path.
				var sa, sb strings.Builder
				if _, _, err := narrowed.QueryToStream(ctx, &sa, q, instance.FormatJSON); err != nil {
					t.Fatalf("%s: streamed narrowed: %v", q, err)
				}
				if _, _, err := plain.QueryToStream(ctx, &sb, q, instance.FormatJSON); err != nil {
					t.Fatalf("%s: streamed plain: %v", q, err)
				}
				if sa.String() != sb.String() {
					t.Errorf("%s: streamed output diverges with semi-join narrowing", q)
				}
				mat, err := narrowed.QueryString(ctx, q, instance.FormatJSON)
				if err != nil {
					t.Fatal(err)
				}
				if sa.String() != mat {
					t.Errorf("%s: streamed and materialized narrowed output diverge", q)
				}
			}
		})
	}
}
