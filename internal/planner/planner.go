// Package planner implements query planner v2: predicate pushdown and
// projection pruning between S2SQL planning and extraction. The paper's
// Query Handler derives "the list of attributes to extract" (§2.4); the
// baseline pipeline extracts every mapped attribute from every source and
// applies WHERE constraints only after instance generation
// (internal/instance/filter.go). This package rewrites the extraction
// schema per query so that work a selective query cannot use is never
// fetched, parsed, or assembled:
//
//   - Prune: a record-scope group of entries that provably cannot satisfy
//     the query's conditions (its group maps no entry for a constrained
//     attribute, so every instance it would build lacks the value and
//     fails the condition) is dropped before any rule runs.
//   - Record filter: when the constrained attribute and its sibling
//     entries share one source record scope (same table row, same XML
//     record node, positionally correlated web/text fragments), the
//     extractor drops failing record positions before fragments enter the
//     result set (mapping.RecordFilter).
//   - Native SQL pushdown: for database groups the string-equality and
//     LIKE constraints are additionally appended to the generated SQL as
//     a widened `col LIKE '%...%'` predicate, so the partner database
//     returns fewer rows. The predicate is a strict superset of the
//     instance-layer comparison, and the original rule is preserved as a
//     fallback, so it can only shrink work, never answers.
//
// Every decision is sound, not load-bearing: the instance-layer filter
// always re-applies the conditions as the residual safety net, and a
// group that fails any eligibility gate is simply left alone. Decisions
// are taken in deterministic order (source order, entry order, condition
// order — no map iteration), so identical queries rewrite identically.
package planner

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/datasource"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/s2sql"
	"repro/internal/sqllang"
	"repro/internal/xmlpath"
)

// Stats counts what a rewrite changed; the extractor surfaces them as
// span attributes and s2s_planner_* counters (internal/obs).
type Stats struct {
	// SourcesPruned counts source plans dropped entirely (every entry
	// pruned).
	SourcesPruned int
	// EntriesPruned counts mapping entries removed without running.
	EntriesPruned int
	// PushdownApplied counts record-scope groups that received a pushdown
	// (a record filter, with or without native SQL predicates).
	PushdownApplied int
	// SemiJoinsPlanned counts groups annotated as semi-join narrowable:
	// blocked from pushdown only by a class key, and safe to restrict to
	// the key values seen by the first extraction wave at runtime.
	SemiJoinsPlanned int
}

// Action classifies one per-group planning decision.
type Action string

// Actions.
const (
	// ActionPrune removed the group's entries without running them.
	ActionPrune Action = "prune"
	// ActionFilter attached a record-scope filter.
	ActionFilter Action = "filter"
	// ActionFilterSQL attached a record-scope filter and rewrote the
	// group's SQL with native WHERE predicates.
	ActionFilterSQL Action = "filter+sql"
	// ActionDecline left the group untouched; Detail names the gate.
	ActionDecline Action = "decline"
	// ActionSemiJoin annotated the group as narrowable: pushdown is
	// blocked only by a class key, so at runtime the extractor may
	// restrict the group to the key values produced by the first wave
	// (mapping.SemiJoin). The annotation changes nothing by itself.
	ActionSemiJoin Action = "semijoin"
)

// Decision records why one record-scope group was or was not pushed
// down; the table-driven planner tests assert on these.
type Decision struct {
	SourceID string
	// Group lists the member entries' attribute IDs in entry order.
	Group  []string
	Action Action
	// Detail is the human-readable reason (gate name for declines).
	Detail string
}

// Result is a rewritten extraction schema.
type Result struct {
	Plans     []mapping.SourcePlan
	Stats     Stats
	Decisions []Decision
}

// Rewrite plans pushdown and pruning for one query over one extraction
// schema. It never mutates its inputs: plans carrying changes are fresh
// copies (entry slices included), untouched plans are passed through.
// classKeys is the mapping repository's class-key table
// (Repository.ClassKeys); any declared key comparable with a group's
// classes disables pushdown for that group, because cross-source merging
// happens before the instance-layer filter.
func Rewrite(ont *ontology.Ontology, classKeys map[string]string, plan *s2sql.Plan, plans []mapping.SourcePlan) Result {
	res := Result{Plans: plans}
	if ont == nil || plan == nil || plan.Class == nil || len(plan.Conditions) == 0 {
		return res
	}

	// Relation targets across the whole ontology: a class that can be a
	// link target may appear in the answer as a Related instance, so its
	// records are never dropped at the source.
	var relTargets []*ontology.Class
	for _, c := range ont.Classes() {
		for _, r := range c.Relations {
			relTargets = append(relTargets, r.To)
		}
	}
	// Class-key classes, resolved in deterministic order.
	keyNames := make([]string, 0, len(classKeys))
	for name := range classKeys {
		keyNames = append(keyNames, name)
	}
	sort.Strings(keyNames)
	var keyClasses []*ontology.Class
	unresolvedKey := false
	for _, name := range keyNames {
		if c, ok := ont.Class(name); ok {
			keyClasses = append(keyClasses, c)
		} else {
			unresolvedKey = true
		}
	}

	out := make([]mapping.SourcePlan, 0, len(plans))
	for _, sp := range plans {
		rw := rewriteSource(ont, plan, sp, relTargets, keyClasses, classKeys, unresolvedKey, &res)
		if len(rw.Entries) > 0 {
			out = append(out, rw)
		} else {
			res.Stats.SourcesPruned++
		}
	}
	res.Plans = out
	return res
}

// group is one simulated lineage group: the entries whose attribute
// classes lie on one root-to-leaf chain, mirroring the instance
// generator's partition() over this source's fragments.
type group struct {
	class   *ontology.Class
	idx     []int
	classes []*ontology.Class
}

// rewriteSource plans one source. The returned plan has zero entries
// when every entry was pruned.
func rewriteSource(ont *ontology.Ontology, plan *s2sql.Plan, sp mapping.SourcePlan, relTargets, keyClasses []*ontology.Class, classKeys map[string]string, unresolvedKey bool, res *Result) mapping.SourcePlan {
	classes := make([]*ontology.Class, len(sp.Entries))
	for i, e := range sp.Entries {
		attr, ok := ont.Attribute(e.AttributeID)
		if !ok {
			// An entry outside the ontology would error at instance
			// generation; leave the whole source untouched so that path
			// is preserved.
			res.Decisions = append(res.Decisions, Decision{
				SourceID: sp.Source.ID, Action: ActionDecline,
				Detail: fmt.Sprintf("attribute %s not in ontology", e.AttributeID),
			})
			return sp
		}
		classes[i] = attr.Class
	}

	// Simulate the instance generator's greedy lineage partition in entry
	// order (fragments are emitted in entry order, so the simulation and
	// the runtime agree).
	var groups []*group
	for i, cls := range classes {
		placed := false
		for _, grp := range groups {
			switch {
			case cls.IsA(grp.class):
				grp.idx = append(grp.idx, i)
				grp.classes = append(grp.classes, cls)
				grp.class = cls
				placed = true
			case grp.class.IsA(cls):
				grp.idx = append(grp.idx, i)
				grp.classes = append(grp.classes, cls)
				placed = true
			}
			if placed {
				break
			}
		}
		if !placed {
			groups = append(groups, &group{class: cls, idx: []int{i}, classes: []*ontology.Class{cls}})
		}
	}

	pruned := make([]bool, len(sp.Entries))
	anyPrune := false
	var filters []mapping.RecordFilter
	var semiJoins []mapping.SemiJoin
	entries := sp.Entries // copied on first mutation
	copied := false

	for _, grp := range groups {
		attrs := make([]string, len(grp.idx))
		for k, i := range grp.idx {
			attrs[k] = sp.Entries[i].AttributeID
		}
		decide := func(a Action, detail string) {
			res.Decisions = append(res.Decisions, Decision{
				SourceID: sp.Source.ID, Group: attrs, Action: a, Detail: detail,
			})
		}

		// Match conditions to group entries by attribute ID.
		matchIdx := make([][]int, len(plan.Conditions))
		for j, c := range plan.Conditions {
			key := strings.ToLower(c.Attribute.ID())
			for _, i := range grp.idx {
				if strings.ToLower(sp.Entries[i].AttributeID) == key {
					matchIdx[j] = append(matchIdx[j], i)
				}
			}
		}

		// Shared gates: pushing or pruning a group is sound only when its
		// records can neither appear in the answer by another route nor
		// change how other records assemble.
		if reason := shareGates(plan, grp, classes, relTargets, keyClasses, unresolvedKey); reason != "" {
			// A group blocked ONLY by the class-key gate may still be
			// narrowable: its records matter solely through key-based
			// merging, so restricting it to the key values the other
			// sources actually produced cannot change the answer. The
			// annotation is advisory; the extractor decides at runtime.
			if strings.HasPrefix(reason, "class key declared on") &&
				shareGates(plan, grp, classes, relTargets, nil, false) == "" {
				if sj, why := semiJoinFor(plan, sp, grp, classKeys, matchIdx); sj != nil {
					semiJoins = append(semiJoins, *sj)
					res.Stats.SemiJoinsPlanned++
					decide(ActionSemiJoin, fmt.Sprintf("%s; narrowable via %s", reason, sj.KeyAttribute))
					continue
				} else if why != "" {
					decide(ActionDecline, reason+"; no semi-join: "+why)
					continue
				}
			}
			decide(ActionDecline, reason)
			continue
		}

		// Prune: a condition with no entry in this group means every
		// instance the group builds lacks the value and fails the
		// condition — provided no earlier condition could error instead
		// (errors must surface identically, so an error-capable earlier
		// condition blocks the prune and the record filter handles it).
		pruneAt := -1
		for j := range plan.Conditions {
			if len(matchIdx[j]) == 0 {
				pruneAt = j
				break
			}
		}
		if pruneAt >= 0 {
			errFree := true
			for j := 0; j < pruneAt; j++ {
				if s2sql.ConditionCanError(plan.Conditions[j]) {
					errFree = false
					break
				}
			}
			if errFree {
				for _, i := range grp.idx {
					pruned[i] = true
				}
				anyPrune = true
				res.Stats.EntriesPruned += len(grp.idx)
				decide(ActionPrune, fmt.Sprintf("no entry for constrained attribute %s", plan.Conditions[pruneAt].Attribute.ID()))
				continue
			}
		}

		// Record filter: requires every member to be multi-record (the
		// positional contract) and a shared record scope per source kind.
		single := false
		for _, i := range grp.idx {
			if sp.Entries[i].Scenario != mapping.MultiRecord {
				single = true
				break
			}
		}
		if single {
			decide(ActionDecline, "single-record entry in group")
			continue
		}
		sels, reason := scopeGate(sp, grp)
		if reason != "" {
			decide(ActionDecline, reason)
			continue
		}

		filters = append(filters, mapping.RecordFilter{
			Entries:    append([]int(nil), grp.idx...),
			Conditions: plan.Conditions,
		})
		res.Stats.PushdownApplied++

		// Native SQL pushdown on top of the filter for database groups.
		if sels != nil {
			if pred := nativePredicate(plan.Conditions, matchIdx, sp.Entries, sels, grp); pred != nil {
				if !copied {
					entries = append([]mapping.Entry(nil), entries...)
					copied = true
				}
				for k, i := range grp.idx {
					sel := *sels[k] // shallow copy; only Where is replaced
					sel.Where = andExpr(sel.Where, pred)
					entries[i].Rule.Fallback = entries[i].Rule.Code
					entries[i].Rule.Code = sel.String()
				}
				decide(ActionFilterSQL, pred.String())
				continue
			}
		}
		decide(ActionFilter, "record-scope filter")
	}

	if !anyPrune {
		if len(filters) == 0 && len(semiJoins) == 0 && !copied {
			return sp
		}
		return mapping.SourcePlan{Source: sp.Source, Entries: entries, Filters: filters, SemiJoins: semiJoins}
	}

	// Rebuild the entry list without the pruned groups, remapping filter
	// and semi-join indexes. Removing a whole lineage group preserves the
	// remaining entries' partition assignments: the share gates guarantee
	// no other entry's class is comparable with a pruned group's classes,
	// so no surviving fragment could have joined (or absorbed) the pruned
	// group.
	remap := make([]int, len(sp.Entries))
	kept := make([]mapping.Entry, 0, len(sp.Entries))
	for i := range entries {
		if pruned[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(kept)
		kept = append(kept, entries[i])
	}
	for fi := range filters {
		for k, i := range filters[fi].Entries {
			filters[fi].Entries[k] = remap[i]
		}
	}
	for si := range semiJoins {
		for k, i := range semiJoins[si].Entries {
			semiJoins[si].Entries[k] = remap[i]
		}
		semiJoins[si].KeyEntry = remap[semiJoins[si].KeyEntry]
	}
	return mapping.SourcePlan{Source: sp.Source, Entries: kept, Filters: filters, SemiJoins: semiJoins}
}

// semiJoinFor checks whether a class-key-blocked group is safe to narrow
// at runtime. The soundness argument: such a group's records can only
// influence the answer through key-based merging (the non-key gates all
// passed), and a merged instance assembled purely from narrowed groups
// still lacks every attribute in EligibleConds, so the residual
// instance-layer filter rejects it without evaluating an error-capable
// condition first. Records whose key value was produced by no other
// source are therefore invisible to the answer, and dropping them is a
// pure optimization. The returned reason is "" only alongside a non-nil
// semi-join.
func semiJoinFor(plan *s2sql.Plan, sp mapping.SourcePlan, grp *group, classKeys map[string]string, matchIdx [][]int) (*mapping.SemiJoin, string) {
	// Eligible conditions: unmapped in this group, with an error-free
	// prefix — mirroring the prune gate. The extractor intersects these
	// across all narrowed groups so that narrowed×narrowed merges also
	// provably fail one common condition.
	var eligible []int
	errFree := true
	for j := range plan.Conditions {
		if len(matchIdx[j]) == 0 && errFree {
			eligible = append(eligible, j)
		}
		if s2sql.ConditionCanError(plan.Conditions[j]) {
			errFree = false
		}
	}
	if len(eligible) == 0 {
		return nil, "every constrained attribute is mapped"
	}

	// The merge key is looked up by the instance's own class name; a key
	// declared on a comparable-but-different class blocks the gate yet
	// never merges this group's instances, so narrowing by it would be
	// meaningless (and the conservative answer is to do nothing).
	keyAttr := classKeys[strings.ToLower(grp.class.Name)]
	if keyAttr == "" {
		return nil, "key is declared on a comparable class, not the group's own"
	}
	keyIdx := -1
	for _, i := range grp.idx {
		if strings.EqualFold(sp.Entries[i].AttributeID, keyAttr) {
			if keyIdx >= 0 {
				return nil, "key attribute mapped more than once"
			}
			keyIdx = i
		}
	}
	if keyIdx < 0 {
		return nil, "group does not map the key attribute"
	}

	// Narrowing reuses the positional record contract (SQL IN or a
	// key-value record filter), so the same multi-record and shared-scope
	// gates as pushdown apply.
	for _, i := range grp.idx {
		if sp.Entries[i].Scenario != mapping.MultiRecord {
			return nil, "single-record entry in group"
		}
	}
	sels, reason := scopeGate(sp, grp)
	if reason != "" {
		return nil, reason
	}

	sj := &mapping.SemiJoin{
		Entries:       append([]int(nil), grp.idx...),
		KeyAttribute:  keyAttr,
		KeyEntry:      keyIdx,
		EligibleConds: eligible,
	}
	// Database groups can narrow natively with a typed IN predicate, but
	// only when the key column holds the values the merge compares: a
	// transform makes the fragment value diverge from the column value,
	// in which case the extractor falls back to the record filter.
	if sels != nil && sp.Entries[keyIdx].Rule.Transform == "" {
		for k, i := range grp.idx {
			if i == keyIdx {
				sj.SQL = true
				sj.KeyColumn = sels[k].Columns[0].Col.String()
			}
		}
	}
	return sj, ""
}

// shareGates checks the gates common to pruning and filtering; it
// returns "" when they all hold, else the human-readable reason.
//
//   - Every member class must be the queried class or a descendant:
//     other groups' instances are not condition-checked at all.
//   - No member class may be a relation target (or a subclass of one):
//     such instances can enter the answer as Related via links.
//   - No declared class key may be comparable with a member class:
//     cross-source merging happens before the instance-layer filter, so
//     a dropped record could otherwise have donated values to a merge.
//   - Every other entry of the same source must be class-incomparable
//     with every member: otherwise removing (or failing) group members
//     at runtime would re-partition the survivors differently than the
//     simulation predicted.
func shareGates(plan *s2sql.Plan, grp *group, classes []*ontology.Class, relTargets, keyClasses []*ontology.Class, unresolvedKey bool) string {
	if unresolvedKey {
		return "class key on unknown class"
	}
	for _, mc := range grp.classes {
		if !mc.IsA(plan.Class) {
			return fmt.Sprintf("class %s is not a %s", mc.Name, plan.Class.Name)
		}
		for _, t := range relTargets {
			if mc.IsA(t) {
				return fmt.Sprintf("class %s is a relation target", mc.Name)
			}
		}
		for _, kc := range keyClasses {
			if mc.IsA(kc) || kc.IsA(mc) {
				return fmt.Sprintf("class key declared on %s", kc.Name)
			}
		}
	}
	member := make(map[int]bool, len(grp.idx))
	for _, i := range grp.idx {
		member[i] = true
	}
	for i, cls := range classes {
		if member[i] {
			continue
		}
		for _, mc := range grp.classes {
			if cls.IsA(mc) || mc.IsA(cls) {
				return fmt.Sprintf("class %s of another group is comparable with %s", cls.Name, mc.Name)
			}
		}
	}
	return ""
}

// scopeGate checks that every group member reads the same source record
// scope, per source kind. For database groups it returns the parsed
// SELECT of each member (in group order) for the native-SQL rewrite;
// for other kinds sels is nil. reason is "" when the gate holds.
func scopeGate(sp mapping.SourcePlan, grp *group) (sels []*sqllang.Select, reason string) {
	switch sp.Source.Kind {
	case datasource.KindDatabase:
		sels = make([]*sqllang.Select, len(grp.idx))
		var table, whereStr, orderStr string
		for k, i := range grp.idx {
			rule := sp.Entries[i].Rule
			if rule.Language != mapping.LangSQL {
				return nil, "non-SQL rule on database source"
			}
			stmt, err := sqllang.Parse(rule.Code)
			if err != nil {
				return nil, "unparseable SQL rule"
			}
			sel, ok := stmt.(*sqllang.Select)
			if !ok {
				return nil, "SQL rule is not a SELECT"
			}
			if sel.Distinct || len(sel.Joins) > 0 || len(sel.GroupBy) > 0 ||
				sel.Limit >= 0 || sel.Offset > 0 ||
				len(sel.Columns) != 1 || sqllang.HasAggregate(sel.Columns) {
				return nil, "SQL rule is not a plain single-column scan"
			}
			w, o := "", ""
			if sel.Where != nil {
				w = sel.Where.String()
			}
			if sel.Order != nil {
				o = sel.Order.Column.String()
				if sel.Order.Desc {
					o += " DESC"
				}
			}
			if k == 0 {
				table, whereStr, orderStr = sel.Table, w, o
			} else if !strings.EqualFold(sel.Table, table) || w != whereStr || o != orderStr {
				return nil, "SQL rules scan different row sets"
			}
			sels[k] = sel
		}
		return sels, ""
	case datasource.KindXML:
		var scope string
		for k, i := range grp.idx {
			rule := sp.Entries[i].Rule
			if rule.Language != mapping.LangXPath {
				return nil, "non-XPath rule on XML source"
			}
			p, err := xmlpath.Compile(rule.Code)
			if err != nil {
				return nil, "unparseable XPath rule"
			}
			s, ok := p.RecordScopeKey()
			if !ok {
				return nil, "XPath rule has no stable record scope"
			}
			if k == 0 {
				scope = s
			} else if s != scope {
				return nil, "XPath rules read different record scopes"
			}
		}
		return nil, ""
	default:
		// Web and text rules emit one positionally-correlated value list
		// per record by the multi-record contract; the filter applies at
		// the fragment level with no further scope to check.
		return nil, ""
	}
}

// nativePredicate builds the one WHERE predicate appended to every
// member's SQL: the AND of a widened `col LIKE '%text%'` per eligible
// condition. Widening makes the predicate a strict superset of the
// instance-layer comparison (case-insensitive containment ⊇ trimmed
// equality and ⊇ full-pattern LIKE), so rows it removes are exactly rows
// the record filter would remove anyway. The same predicate goes on every
// member, so the engine's type-driven WHERE errors hit all members
// uniformly and the fallback keeps their row sets aligned. Returns nil
// when no condition is eligible.
func nativePredicate(conds []s2sql.PlannedCondition, matchIdx [][]int, entries []mapping.Entry, sels []*sqllang.Select, grp *group) sqllang.Expr {
	selAt := make(map[int]*sqllang.Select, len(grp.idx))
	for k, i := range grp.idx {
		selAt[i] = sels[k]
	}
	var pred sqllang.Expr
	for j, c := range conds {
		dt := c.Attribute.Datatype
		if dt == rdf.XSDInteger || dt == rdf.XSDDecimal || dt == rdf.XSDDouble || dt == rdf.XSDBoolean {
			continue // numeric/boolean comparisons are not containment-widenable
		}
		if c.Op != s2sql.OpEq && c.Op != s2sql.OpLike {
			continue
		}
		if c.Value.Kind != sqllang.LitString {
			continue
		}
		// A NULL column extracts as "", which an empty-matching constraint
		// accepts — but the native predicate would drop the row. Push only
		// constraints that reject the empty value.
		if c.Op == s2sql.OpEq && c.Value.Text == "" {
			continue
		}
		if c.Op == s2sql.OpLike && s2sql.LikeMatch("", c.Value.Text) {
			continue
		}
		if len(matchIdx[j]) != 1 {
			continue // no unambiguous column for this attribute
		}
		i := matchIdx[j][0]
		if entries[i].Rule.Transform != "" {
			continue // the filter compares transformed values; the column holds raw ones
		}
		sel, ok := selAt[i]
		if !ok {
			continue
		}
		p := &sqllang.BinaryExpr{
			Op:    sqllang.OpLike,
			Left:  sel.Columns[0].Col,
			Right: sqllang.LiteralExpr{Kind: sqllang.LitString, Text: "%" + c.Value.Text + "%"},
		}
		pred = andExpr(pred, p)
	}
	return pred
}

func andExpr(left, right sqllang.Expr) sqllang.Expr {
	if left == nil {
		return right
	}
	if right == nil {
		return left
	}
	return &sqllang.BinaryExpr{Op: sqllang.OpAnd, Left: left, Right: right}
}

// narrowNumRe admits exactly the numeric spellings that round-trip
// losslessly through the SQL lexer and the engine's literal parser:
// plain non-negative decimals. Exponent forms, signs, and anything else
// float-parseable but not re-renderable abort the narrowing instead.
var narrowNumRe = regexp.MustCompile(`^[0-9]+(\.[0-9]+)?$`)

// NarrowSQL rewrites a planned SQL rule to scan only rows whose key
// column takes one of the given values, by appending `key IN (...)` to
// the WHERE clause. Each value is emitted as a string literal plus — when
// the value also spells a number or a boolean — the matching typed
// literal, so the IN predicate is a superset of the instance layer's
// string-keyed merge regardless of the column's type (the engine
// swallows cross-type comparison errors inside IN as non-matches, and
// compares TEXT case-sensitively, exactly like the merge). It returns
// ok=false, leaving the caller to run the rule unnarrowed, when the rule
// does not parse, when there is no usable value, or when any value
// cannot be rendered safely.
func NarrowSQL(code, keyColumn string, values []string) (string, bool) {
	stmt, err := sqllang.Parse(code)
	if err != nil {
		return "", false
	}
	sel, ok := stmt.(*sqllang.Select)
	if !ok {
		return "", false
	}
	lits := make([]sqllang.LiteralExpr, 0, len(values))
	for _, v := range values {
		vl, ok := keyLiterals(v)
		if !ok {
			return "", false
		}
		lits = append(lits, vl...)
	}
	if len(lits) == 0 {
		return "", false
	}
	col := sqllang.ColumnRef{Column: keyColumn}
	if i := strings.IndexByte(keyColumn, '.'); i >= 0 {
		col = sqllang.ColumnRef{Table: keyColumn[:i], Column: keyColumn[i+1:]}
	}
	narrowed := *sel // shallow copy; only Where is replaced
	narrowed.Where = andExpr(sel.Where, &sqllang.InExpr{Operand: col, Values: lits})
	return narrowed.String(), true
}

// keyLiterals renders one key value as IN-list literals. The empty
// string never participates in a merge, so it contributes nothing; a
// value the lexer could not round-trip (control characters, numeric
// spellings outside narrowNumRe) rejects the whole narrowing.
func keyLiterals(v string) ([]sqllang.LiteralExpr, bool) {
	if v == "" {
		return nil, true
	}
	if strings.ContainsFunc(v, func(r rune) bool { return r < 0x20 }) {
		return nil, false
	}
	lits := []sqllang.LiteralExpr{{Kind: sqllang.LitString, Text: v}}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		if !narrowNumRe.MatchString(v) {
			return nil, false
		}
		lits = append(lits, sqllang.LiteralExpr{Kind: sqllang.LitNumber, Text: v})
	}
	switch v {
	case "true":
		lits = append(lits, sqllang.LiteralExpr{Kind: sqllang.LitBool, Text: "TRUE"})
	case "false":
		lits = append(lits, sqllang.LiteralExpr{Kind: sqllang.LitBool, Text: "FALSE"})
	}
	return lits, true
}
