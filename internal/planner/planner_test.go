package planner_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/planner"
	"repro/internal/s2sql"
	"repro/internal/workload"
)

func newWorld(t *testing.T, spec workload.Spec) (*workload.World, *core.Middleware) {
	t.Helper()
	world := workload.MustGenerate(spec)
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: extract.FromCatalog(world.Catalog),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	return world, mw
}

// rewriteFor plans a query and runs the planner over the middleware's
// extraction schema, exactly as ExtractQuery does.
func rewriteFor(t *testing.T, mw *core.Middleware, query string) planner.Result {
	t.Helper()
	plan, err := s2sql.ParseAndPlan(query, mw.Ontology())
	if err != nil {
		t.Fatal(err)
	}
	repo := mw.Mappings()
	plans, _, err := repo.Schema(plan.AttributeIDs())
	if err != nil {
		t.Fatal(err)
	}
	return planner.Rewrite(repo.Ontology(), repo.ClassKeys(), plan, plans)
}

// decisionFor returns the single decision recorded for sourceID whose
// member list includes attr ("" matches any group of the source).
func decisionFor(t *testing.T, res planner.Result, sourceID, attr string) planner.Decision {
	t.Helper()
	var found []planner.Decision
	for _, d := range res.Decisions {
		if d.SourceID != sourceID {
			continue
		}
		if attr == "" {
			found = append(found, d)
			continue
		}
		for _, a := range d.Group {
			if a == attr {
				found = append(found, d)
				break
			}
		}
	}
	if len(found) != 1 {
		t.Fatalf("decisions for %s/%s = %d (%v), want 1", sourceID, attr, len(found), found)
	}
	return found[0]
}

// TestPlannerDecisions drives one scenario per source type through the
// planner and asserts where pushdown fires and where it declines.
func TestPlannerDecisions(t *testing.T) {
	_, mw := newWorld(t, workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 6, Seed: 7,
	})

	t.Run("db same-row scan gets native SQL", func(t *testing.T) {
		res := rewriteFor(t, mw, "SELECT product WHERE brand = 'Seiko'")
		d := decisionFor(t, res, "db_000", "thing.product.brand")
		if d.Action != planner.ActionFilterSQL {
			t.Fatalf("db decision = %s (%s), want %s", d.Action, d.Detail, planner.ActionFilterSQL)
		}
		if !strings.Contains(d.Detail, "LIKE '%Seiko%'") {
			t.Errorf("pushed predicate = %q, want a widened LIKE", d.Detail)
		}
		// The rewritten plan carries pushed SQL with the original preserved
		// as fallback, on every group member uniformly.
		var sp *mapping.SourcePlan
		for i := range res.Plans {
			if res.Plans[i].Source.ID == "db_000" {
				sp = &res.Plans[i]
			}
		}
		if sp == nil {
			t.Fatal("db_000 missing from rewritten plans")
		}
		pushed := 0
		for _, e := range sp.Entries {
			if e.AttributeID == "thing.provider.name" {
				if e.Rule.Fallback != "" {
					t.Errorf("provider entry was rewritten: %q", e.Rule.Code)
				}
				continue
			}
			if e.Rule.Fallback == "" || !strings.Contains(e.Rule.Code, "LIKE '%Seiko%'") {
				t.Errorf("entry %s not uniformly rewritten: code=%q fallback=%q",
					e.AttributeID, e.Rule.Code, e.Rule.Fallback)
			}
			pushed++
		}
		if pushed == 0 {
			t.Error("no db entries were rewritten")
		}
		if len(sp.Filters) != 1 {
			t.Fatalf("db_000 filters = %d, want 1", len(sp.Filters))
		}
		if res.Stats.PushdownApplied == 0 {
			t.Error("PushdownApplied = 0")
		}
	})

	t.Run("numeric condition filters without native SQL", func(t *testing.T) {
		res := rewriteFor(t, mw, "SELECT product WHERE water_resistance >= 100")
		d := decisionFor(t, res, "db_000", "thing.product.brand")
		if d.Action != planner.ActionFilter {
			t.Fatalf("db decision = %s (%s), want %s", d.Action, d.Detail, planner.ActionFilter)
		}
		for _, sp := range res.Plans {
			for _, e := range sp.Entries {
				if e.Rule.Fallback != "" {
					t.Errorf("numeric condition rewrote SQL of %s/%s", sp.Source.ID, e.AttributeID)
				}
			}
		}
	})

	t.Run("xml shared record scope filters", func(t *testing.T) {
		res := rewriteFor(t, mw, "SELECT product WHERE brand = 'Seiko'")
		d := decisionFor(t, res, "xml_000", "thing.product.brand")
		if d.Action != planner.ActionFilter {
			t.Fatalf("xml decision = %s (%s), want %s", d.Action, d.Detail, planner.ActionFilter)
		}
	})

	t.Run("web and text filter at fragment level only", func(t *testing.T) {
		res := rewriteFor(t, mw, "SELECT product WHERE brand = 'Seiko'")
		for _, src := range []string{"web_000", "txt_000"} {
			d := decisionFor(t, res, src, "thing.product.brand")
			if d.Action != planner.ActionFilter {
				t.Errorf("%s decision = %s (%s), want %s", src, d.Action, d.Detail, planner.ActionFilter)
			}
		}
	})

	t.Run("provider group declines: not the queried class", func(t *testing.T) {
		res := rewriteFor(t, mw, "SELECT product WHERE brand = 'Seiko'")
		d := decisionFor(t, res, "db_000", "thing.provider.name")
		if d.Action != planner.ActionDecline || !strings.Contains(d.Detail, "not a product") {
			t.Errorf("provider decision = %s (%s), want decline", d.Action, d.Detail)
		}
	})

	t.Run("relation-target class declines", func(t *testing.T) {
		res := rewriteFor(t, mw, "SELECT provider WHERE name = 'Acme'")
		d := decisionFor(t, res, "db_000", "thing.provider.name")
		if d.Action != planner.ActionDecline || !strings.Contains(d.Detail, "relation target") {
			t.Errorf("provider decision = %s (%s), want relation-target decline", d.Action, d.Detail)
		}
	})
}

// TestPlannerCrossRecordXMLDeclines maps two attributes of one lineage
// to different XML record scopes: their value lists do not correlate
// positionally, so pushing a filter across them would be unsound and
// the planner must decline.
func TestPlannerCrossRecordXMLDeclines(t *testing.T) {
	_, mw := newWorld(t, workload.Spec{XMLSources: 1, RecordsPerSource: 4, Seed: 3})
	if err := mw.RegisterSource(datasource.Definition{
		ID: "xmlx", Kind: datasource.KindXML, Path: "cross.xml",
	}); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "xmlx",
		Rule: mapping.Rule{Language: mapping.LangXPath, Code: "/catalog/watch/brand"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.model", SourceID: "xmlx",
		Rule: mapping.Rule{Language: mapping.LangXPath, Code: "/archive/item/model"},
	}); err != nil {
		t.Fatal(err)
	}
	res := rewriteFor(t, mw, "SELECT product WHERE brand = 'Seiko'")
	d := decisionFor(t, res, "xmlx", "thing.product.brand")
	if d.Action != planner.ActionDecline || !strings.Contains(d.Detail, "different record scopes") {
		t.Errorf("cross-record decision = %s (%s), want record-scope decline", d.Action, d.Detail)
	}
}

// TestPlannerPrune covers projection pruning: a source whose group maps
// no entry for a constrained attribute is dropped before extraction.
func TestPlannerPrune(t *testing.T) {
	// Web sources map brand/model/case/price but not water_resistance.
	_, mw := newWorld(t, workload.Spec{
		DBSources: 1, WebSources: 1, RecordsPerSource: 5, Seed: 11,
	})
	res := rewriteFor(t, mw, "SELECT product WHERE water_resistance >= 100 AND brand = 'Seiko'")
	d := decisionFor(t, res, "web_000", "thing.product.brand")
	if d.Action != planner.ActionPrune {
		t.Fatalf("web decision = %s (%s), want %s", d.Action, d.Detail, planner.ActionPrune)
	}
	if res.Stats.EntriesPruned != 4 {
		t.Errorf("EntriesPruned = %d, want 4", res.Stats.EntriesPruned)
	}
	for _, sp := range res.Plans {
		if sp.Source.ID != "web_000" {
			continue
		}
		// Only the single-record provider entry survives.
		if len(sp.Entries) != 1 || sp.Entries[0].AttributeID != "thing.provider.name" {
			t.Errorf("web_000 surviving entries = %v", sp.Entries)
		}
	}

	// A condition whose evaluation can error, ordered before the missing
	// attribute, blocks the prune: the error must still surface.
	res = rewriteFor(t, mw, "SELECT product WHERE price > 10 AND water_resistance >= 100")
	d = decisionFor(t, res, "web_000", "thing.product.brand")
	if d.Action == planner.ActionPrune {
		t.Errorf("prune fired despite error-capable earlier condition (%s)", d.Detail)
	}
}

// TestPlannerPrunesWholeSource drops a source every entry of which is
// prunable.
func TestPlannerPrunesWholeSource(t *testing.T) {
	_, mw := newWorld(t, workload.Spec{DBSources: 1, RecordsPerSource: 4, Seed: 5})
	if err := mw.RegisterSource(datasource.Definition{
		ID: "txtonly", Kind: datasource.KindText, Path: "brands.txt",
	}); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "txtonly",
		Rule: mapping.Rule{Language: mapping.LangRegex, Code: `brand: (\w+)`},
	}); err != nil {
		t.Fatal(err)
	}
	res := rewriteFor(t, mw, "SELECT product WHERE water_resistance >= 100")
	if res.Stats.SourcesPruned != 1 {
		t.Errorf("SourcesPruned = %d, want 1", res.Stats.SourcesPruned)
	}
	for _, sp := range res.Plans {
		if sp.Source.ID == "txtonly" {
			t.Error("txtonly still in rewritten plans")
		}
	}
}

// TestPlannerClassKeyDeclines registers a class key on the queried
// class: instances then merge across sources before the residual filter
// runs, so dropping records at one source could starve a merge and the
// planner must keep its hands off.
func TestPlannerClassKeyDeclines(t *testing.T) {
	_, mw := newWorld(t, workload.Spec{DBSources: 1, RecordsPerSource: 4, Seed: 9})
	if err := mw.SetClassKey("product", "thing.product.model"); err != nil {
		t.Fatal(err)
	}
	res := rewriteFor(t, mw, "SELECT product WHERE brand = 'Seiko'")
	d := decisionFor(t, res, "db_000", "thing.product.brand")
	if d.Action != planner.ActionDecline || !strings.Contains(d.Detail, "class key") {
		t.Errorf("decision = %s (%s), want class-key decline", d.Action, d.Detail)
	}
}

// TestPushdownEquivalence is the soundness fixture: every query must
// produce byte-identical serialized results and identical error lists
// with pushdown enabled and disabled, across all source types.
func TestPushdownEquivalence(t *testing.T) {
	spec := workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 12, Seed: 21,
	}
	world := workload.MustGenerate(spec)
	build := func(disable bool) *core.Middleware {
		mw, err := core.New(core.Config{
			Ontology: world.Ontology,
			Backends: extract.FromCatalog(world.Catalog),
			Extract:  extract.Options{DisablePushdown: disable},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := world.Apply(mw); err != nil {
			t.Fatal(err)
		}
		return mw
	}
	pushed, plain := build(false), build(true)

	queries := []string{
		"SELECT product",
		"SELECT product WHERE brand = 'Seiko'",
		"SELECT product WHERE brand LIKE 'sei%'",
		"SELECT product WHERE brand = 'Seiko' AND case = 'stainless-steel'",
		"SELECT watch WHERE water_resistance >= 100",
		"SELECT product WHERE price > 100 AND brand = 'Seiko'",
		"SELECT product WHERE brand = 'NoSuchBrand'",
		"SELECT provider WHERE name LIKE '%a%'",
		"SELECT product WHERE water_resistance >= 100 AND brand LIKE '%s%'",
	}
	ctx := context.Background()
	for _, q := range queries {
		for _, format := range []instance.Format{instance.FormatText, instance.FormatJSON} {
			a, errA := pushed.QueryString(ctx, q, format)
			b, errB := plain.QueryString(ctx, q, format)
			if (errA == nil) != (errB == nil) || (errA != nil && errA.Error() != errB.Error()) {
				t.Fatalf("%s: error divergence: pushdown=%v plain=%v", q, errA, errB)
			}
			if a != b {
				t.Errorf("%s (%v): output diverges with pushdown\n--- pushdown ---\n%s\n--- plain ---\n%s", q, format, a, b)
			}
		}
		ra, errA := pushed.Query(ctx, q)
		rb, errB := plain.Query(ctx, q)
		if errA != nil || errB != nil {
			t.Fatalf("%s: %v / %v", q, errA, errB)
		}
		if got, want := fmt.Sprint(ra.Errors), fmt.Sprint(rb.Errors); got != want {
			t.Errorf("%s: source errors diverge: %s vs %s", q, got, want)
		}
	}
}

// TestPushdownShrinksWork asserts the optimization actually optimizes:
// on a selective query the pushed path extracts fewer values than the
// plain path.
func TestPushdownShrinksWork(t *testing.T) {
	spec := workload.Spec{
		DBSources: 1, XMLSources: 1, TextSources: 1,
		RecordsPerSource: 30, Seed: 13,
	}
	world := workload.MustGenerate(spec)
	count := func(disable bool) int {
		mgr := extract.NewManager(
			coreRepo(t, world),
			extract.FromCatalog(world.Catalog),
			extract.Options{DisablePushdown: disable},
		)
		plan, err := s2sql.ParseAndPlan("SELECT product WHERE brand = 'Seiko'", world.Ontology)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := mgr.ExtractQuery(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Errors) > 0 {
			t.Fatalf("extraction errors: %v", rs.Errors)
		}
		return rs.Stats.ValuesExtracted
	}
	pushed, plain := count(false), count(true)
	if pushed >= plain {
		t.Errorf("pushdown extracted %d values, plain %d — no reduction", pushed, plain)
	}
}

func coreRepo(t *testing.T, world *workload.World) *mapping.Repository {
	t.Helper()
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: extract.FromCatalog(world.Catalog),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	return mw.Mappings()
}
