package planner

// mergefree.go is the planner side of barrier-free streaming
// (docs/STREAMING.md, "Barrier-free emission"): a static proof that a
// planned query can never merge, link, or key-join instances across
// fragments, so the instance generator's deterministic assembly order
// is already canonical and the streaming pipeline may emit instances as
// extraction windows close, without the ordering barrier.
//
// The proof is conservative and option-independent: it looks only at
// the ontology, the declared class keys, and the unrewritten extraction
// schema — never at pushdown or semi-join settings — so every execution
// path of the same catalog state (materializing, streaming, cluster
// scatter-gather, pushdown disabled) reaches the same verdict and the
// same canonical instance order. Like every planner decision it is
// sound, not load-bearing: a false verdict only means the barrier runs.

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/ontology"
)

// Merge-free proof outcomes; MergeFreeVerdict.Outcome is one of these,
// and they label the s2s_planner_mergefree_total counter.
const (
	// MergeFreeProved: every condition held, the barrier can be skipped.
	MergeFreeProved = "proved"
	// MergeFreeUnmappedAttr: an entry's attribute is not in the ontology,
	// so its lineage class is unknown.
	MergeFreeUnmappedAttr = "unmapped_attribute"
	// MergeFreeRelations: a produced instance class (or an ancestor)
	// declares relations, or is a relation target, so linking could
	// populate Links or Related.
	MergeFreeRelations = "relations"
	// MergeFreeClassKey: a declared class key is comparable with an entry
	// class, so cross-source key merging (or a semi-join second wave)
	// could occur.
	MergeFreeClassKey = "class_key"
	// MergeFreeMultiGroup: a source's entries span more than one lineage
	// chain, so pruning could reorder that source's groups.
	MergeFreeMultiGroup = "multi_group"
)

// MergeFreeVerdict is the result of ProveMergeFree.
type MergeFreeVerdict struct {
	// OK reports that the plan is provably merge-free.
	OK bool
	// Outcome is the MergeFree* constant naming the verdict (the first
	// failed condition, or MergeFreeProved).
	Outcome string
	// Detail is the human-readable reason for a declined proof.
	Detail string
}

// ProveMergeFree decides whether the extraction schema of one query is
// merge-free: no instance the pipeline builds from it can be merged by
// a class key, linked to another instance, or joined by a semi-join
// second wave, and every source's entries form a single lineage group.
// Under those conditions the generator's assembly order — sources in
// sorted ID order, records in extraction order — is deterministic and
// identical on every execution path, so it replaces the fingerprint
// sort as the canonical order and instances can stream out as windows
// complete (docs/STREAMING.md).
//
// plans must be the unrewritten repository schema (mapping.Repository
// Schema) so the verdict is independent of pushdown options; the
// single-group condition is stable under the planner's pruning, because
// a group's member classes lie on one root-to-leaf chain and every
// subset of a chain is still a chain.
func ProveMergeFree(ont *ontology.Ontology, classKeys map[string]string, plans []mapping.SourcePlan) MergeFreeVerdict {
	if ont == nil {
		return MergeFreeVerdict{Outcome: MergeFreeUnmappedAttr, Detail: "no ontology"}
	}
	// Relation targets across the whole ontology (as in Rewrite): an
	// instance of a target class can be linked into Related by instances
	// of the relation's From class, so target classes decline too.
	var relTargets []*ontology.Class
	for _, c := range ont.Classes() {
		for _, r := range c.Relations {
			relTargets = append(relTargets, r.To)
		}
	}
	for _, sp := range plans {
		var groups []*group
		for _, e := range sp.Entries {
			attr, ok := ont.Attribute(e.AttributeID)
			if !ok {
				return MergeFreeVerdict{
					Outcome: MergeFreeUnmappedAttr,
					Detail:  fmt.Sprintf("attribute %s not in ontology", e.AttributeID),
				}
			}
			cls := attr.Class

			// No produced class may reach a relation: the instance
			// generator links from a class or any of its ancestors, so a
			// relation anywhere on the chain can populate Links/Related.
			for p := cls; p != nil; p = p.Parent {
				if len(p.Relations) > 0 {
					return MergeFreeVerdict{
						Outcome: MergeFreeRelations,
						Detail:  fmt.Sprintf("class %s declares relation %s", p.Name, p.Relations[0].Name),
					}
				}
			}
			for _, t := range relTargets {
				if cls.IsA(t) || t.IsA(cls) {
					return MergeFreeVerdict{
						Outcome: MergeFreeRelations,
						Detail:  fmt.Sprintf("entry class %s is a relation target", cls.Name),
					}
				}
			}

			// No declared class key may be comparable with an entry class:
			// key merging (and with it the semi-join second wave) applies
			// exactly to instances of keyed classes.
			for keyClass := range classKeys {
				kc, ok := ont.Class(keyClass)
				if !ok {
					return MergeFreeVerdict{
						Outcome: MergeFreeClassKey,
						Detail:  fmt.Sprintf("class key on unresolved class %s", keyClass),
					}
				}
				if cls.IsA(kc) || kc.IsA(cls) {
					return MergeFreeVerdict{
						Outcome: MergeFreeClassKey,
						Detail:  fmt.Sprintf("class key on %s is comparable with entry class %s", keyClass, cls.Name),
					}
				}
			}

			// Simulate the generator's greedy lineage partition in entry
			// order (same algorithm as rewriteSource); more than one group
			// per source declines the proof.
			placed := false
			for _, grp := range groups {
				switch {
				case cls.IsA(grp.class):
					grp.class = cls
					placed = true
				case grp.class.IsA(cls):
					placed = true
				}
				if placed {
					break
				}
			}
			if !placed {
				groups = append(groups, &group{class: cls})
				if len(groups) > 1 {
					return MergeFreeVerdict{
						Outcome: MergeFreeMultiGroup,
						Detail: fmt.Sprintf("source %s partitions into multiple lineage groups (%s vs %s)",
							sp.Source.ID, groups[0].class.Name, cls.Name),
					}
				}
			}
		}
	}
	return MergeFreeVerdict{OK: true, Outcome: MergeFreeProved}
}
