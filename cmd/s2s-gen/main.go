// Command s2s-gen generates a synthetic B2B workload world and writes its
// artifacts to a directory: one file per data source (SQL dump, XML
// catalog, HTML page, price list), the ontology as OWL, and the mapping
// entries as JSON — the complete inputs a real S2S deployment would be
// configured with.
//
// Usage:
//
//	s2s-gen -out ./world [-db 1] [-xml 1] [-web 1] [-text 1] [-records 20] [-seed 1]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datasource"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	var (
		out     = flag.String("out", "world", "output directory")
		db      = flag.Int("db", 1, "database sources")
		xml     = flag.Int("xml", 1, "XML sources")
		web     = flag.Int("web", 1, "web page sources")
		text    = flag.Int("text", 1, "plain-text sources")
		records = flag.Int("records", 20, "records per source")
		seed    = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	if err := run(*out, workload.Spec{
		DBSources: *db, XMLSources: *xml, WebSources: *web, TextSources: *text,
		RecordsPerSource: *records, Seed: *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-gen:", err)
		os.Exit(1)
	}
}

func run(dir string, spec workload.Spec) error {
	world, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// Ontology.
	ontFile, err := os.Create(filepath.Join(dir, "ontology.owl"))
	if err != nil {
		return err
	}
	if err := world.Ontology.WriteOWL(ontFile); err != nil {
		return errors.Join(err, ontFile.Close())
	}
	if err := ontFile.Close(); err != nil {
		return err
	}

	// Source contents.
	for _, def := range world.Definitions {
		var content string
		switch def.Kind {
		case datasource.KindXML, datasource.KindWeb, datasource.KindText:
			content = world.RawDocuments[def.ID]
		case datasource.KindDatabase:
			db, err := world.Catalog.DB(def.DSN)
			if err != nil {
				return err
			}
			res, err := db.Query("SELECT brand, model, watch_case, price FROM watches ORDER BY id")
			if err != nil {
				return err
			}
			content = "-- dump of " + def.DSN + "\n"
			for _, row := range res.Rows {
				content += fmt.Sprintf("INSERT INTO watches (brand, model, watch_case, price) VALUES ('%s', '%s', '%s', %s);\n",
					row[0], row[1], row[2], row[3])
			}
		}
		ext := map[datasource.Kind]string{
			datasource.KindXML: "xml", datasource.KindWeb: "html",
			datasource.KindText: "txt", datasource.KindDatabase: "sql",
		}[def.Kind]
		name := fmt.Sprintf("source-%s.%s", def.ID, ext)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}

	// Definitions and mappings as JSON.
	defs := make([]transport.WireSource, len(world.Definitions))
	for i, d := range world.Definitions {
		defs[i] = transport.FromDefinition(d)
	}
	if err := writeJSON(filepath.Join(dir, "sources.json"), defs); err != nil {
		return err
	}
	entries := make([]transport.WireMapping, len(world.Entries))
	for i, e := range world.Entries {
		entries[i] = transport.FromEntry(e)
	}
	if err := writeJSON(filepath.Join(dir, "mappings.json"), entries); err != nil {
		return err
	}

	fmt.Printf("s2s-gen: wrote %d sources, %d mappings, %d records to %s\n",
		len(world.Definitions), len(world.Entries), len(world.Records), dir)
	return nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}
