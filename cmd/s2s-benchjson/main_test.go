package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkE1EndToEnd-8   \t     123\t   9876543 ns/op\t  123456 B/op\t    1234 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if r.Name != "BenchmarkE1EndToEnd" || r.Procs != 8 || r.Iterations != 123 {
		t.Errorf("parsed %+v", r)
	}
	if r.NsPerOp != 9876543 || r.BytesPerOp != 123456 || r.AllocsPerOp != 1234 {
		t.Errorf("units parsed wrong: %+v", r)
	}

	sub, ok := parseLine("BenchmarkE2OntologyScale/classes=64-4  50  31415.9 ns/op")
	if !ok || sub.Name != "BenchmarkE2OntologyScale/classes=64" || sub.NsPerOp != 31415.9 {
		t.Errorf("subbenchmark parsed wrong: %+v ok=%v", sub, ok)
	}

	for _, junk := range []string{"PASS", "ok  \trepro\t12.3s", "goos: linux", "", "some log line"} {
		if _, ok := parseLine(junk); ok {
			t.Errorf("%q misparsed as a benchmark line", junk)
		}
	}
}
