package main

import (
	"strings"
	"testing"
)

func TestCompareBaselines(t *testing.T) {
	old := Baseline{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 50},
		{Name: "BenchmarkB", NsPerOp: 2000},
		{Name: "BenchmarkGone", NsPerOp: 10},
	}}
	cur := Baseline{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 1100, AllocsPerOp: 40}, // +10%: within threshold
		{Name: "BenchmarkB", NsPerOp: 2500},                  // +25%: regression
		{Name: "BenchmarkNew", NsPerOp: 5},
	}}
	var out strings.Builder
	regressed := compareBaselines(old, cur, 20, &out)
	if len(regressed) != 1 || regressed[0] != "BenchmarkB" {
		t.Fatalf("regressed = %v, want [BenchmarkB]", regressed)
	}
	text := out.String()
	for _, want := range []string{"REGRESSED", "new", "removed", "BenchmarkGone", "allocs/op"} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output missing %q:\n%s", want, text)
		}
	}

	// A faster run is never a regression, whatever the margin.
	fast := Baseline{Results: []Result{{Name: "BenchmarkB", NsPerOp: 100}}}
	if got := compareBaselines(old, fast, 20, &out); len(got) != 0 {
		t.Errorf("speedup flagged as regression: %v", got)
	}
}

func TestCompareBaselinesAllocGate(t *testing.T) {
	old := Baseline{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkZero", NsPerOp: 1000},                   // allocs 0→0: flat
		{Name: "BenchmarkGained", NsPerOp: 1000},                 // allocs 0→N: no percentage, no gate
		{Name: "BenchmarkBoth", NsPerOp: 1000, AllocsPerOp: 100}, // ns/op AND allocs regress: one entry
	}}
	cur := Baseline{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 130}, // +30% allocs, flat ns/op
		{Name: "BenchmarkZero", NsPerOp: 1000},
		{Name: "BenchmarkGained", NsPerOp: 1000, AllocsPerOp: 500},
		{Name: "BenchmarkBoth", NsPerOp: 2000, AllocsPerOp: 300},
	}}
	var out strings.Builder
	regressed := compareBaselines(old, cur, 20, &out)
	if len(regressed) != 2 || regressed[0] != "BenchmarkA" || regressed[1] != "BenchmarkBoth" {
		t.Fatalf("regressed = %v, want [BenchmarkA BenchmarkBoth]", regressed)
	}

	// Fewer allocations is an improvement, not a regression.
	better := Baseline{Results: []Result{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10}}}
	if got := compareBaselines(old, better, 20, &out); len(got) != 0 {
		t.Errorf("alloc reduction flagged as regression: %v", got)
	}
}

func TestCompareBaselinesExtraNsGate(t *testing.T) {
	old := Baseline{Results: []Result{
		{Name: "BenchmarkE21", NsPerOp: 1000, Extra: map[string]float64{"first_instance_ns": 100000, "windows": 4}},
		{Name: "BenchmarkOnlyOld", NsPerOp: 1000, Extra: map[string]float64{"first_instance_ns": 100000}},
	}}
	cur := Baseline{Results: []Result{
		{Name: "BenchmarkE21", NsPerOp: 1000, Extra: map[string]float64{"first_instance_ns": 150000, "windows": 400}},
		{Name: "BenchmarkOnlyOld", NsPerOp: 1000}, // metric dropped: nothing to compare
	}}
	var out strings.Builder
	regressed := compareBaselines(old, cur, 20, &out)
	if len(regressed) != 1 || regressed[0] != "BenchmarkE21" {
		t.Fatalf("regressed = %v, want [BenchmarkE21]", regressed)
	}
	if !strings.Contains(out.String(), "first_instance_ns") {
		t.Errorf("compare output missing the extra metric row:\n%s", out.String())
	}
	// "windows" blew up 100x but is not a _ns unit: it must not gate.
	if strings.Count(out.String(), "REGRESSED") != 1 {
		t.Errorf("non-_ns extra gated:\n%s", out.String())
	}

	// Faster time-to-first-instance is an improvement.
	better := Baseline{Results: []Result{
		{Name: "BenchmarkE21", NsPerOp: 1000, Extra: map[string]float64{"first_instance_ns": 10000}},
	}}
	if got := compareBaselines(old, better, 20, &out); len(got) != 0 {
		t.Errorf("first-instance speedup flagged as regression: %v", got)
	}
}

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkE1EndToEnd-8   \t     123\t   9876543 ns/op\t  123456 B/op\t    1234 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if r.Name != "BenchmarkE1EndToEnd" || r.Procs != 8 || r.Iterations != 123 {
		t.Errorf("parsed %+v", r)
	}
	if r.NsPerOp != 9876543 || r.BytesPerOp != 123456 || r.AllocsPerOp != 1234 {
		t.Errorf("units parsed wrong: %+v", r)
	}

	sub, ok := parseLine("BenchmarkE2OntologyScale/classes=64-4  50  31415.9 ns/op")
	if !ok || sub.Name != "BenchmarkE2OntologyScale/classes=64" || sub.NsPerOp != 31415.9 {
		t.Errorf("subbenchmark parsed wrong: %+v ok=%v", sub, ok)
	}

	extra, ok := parseLine("BenchmarkE21FirstInstance-8  10  5000000 ns/op  250000 first_instance_ns  4.0 windows")
	if !ok || extra.NsPerOp != 5000000 {
		t.Fatalf("custom-metric line parsed wrong: %+v ok=%v", extra, ok)
	}
	if extra.Extra["first_instance_ns"] != 250000 || extra.Extra["windows"] != 4.0 {
		t.Errorf("custom metrics not captured: %+v", extra.Extra)
	}

	for _, junk := range []string{"PASS", "ok  \trepro\t12.3s", "goos: linux", "", "some log line"} {
		if _, ok := parseLine(junk); ok {
			t.Errorf("%q misparsed as a benchmark line", junk)
		}
	}
}
