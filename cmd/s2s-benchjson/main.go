// Command s2s-benchjson converts `go test -bench` text output (read
// from stdin) into machine-readable JSON on stdout, so `make bench` can
// persist a perf baseline (BENCH_lint_baseline.json) that future PRs
// diff against. Only the standard benchmark line format is parsed;
// everything else (PASS, ok, log lines) is ignored.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | s2s-benchjson > baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// Baseline is the persisted document.
type Baseline struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

// benchRe matches "BenchmarkName-8  123  456 ns/op ..." lines.
var benchRe = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

func main() {
	base := Baseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   []Result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			base.Results = append(base.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line; ok is false for
// non-benchmark output.
func parseLine(line string) (Result, bool) {
	m := benchRe.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Result{}, false
	}
	r := Result{Name: m[1], Procs: 1}
	if m[2] != "" {
		r.Procs, _ = strconv.Atoi(m[2])
	}
	r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)

	// The tail is unit pairs: "456.7 ns/op  12 B/op  3 allocs/op  8.9 MB/s".
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "MB/s":
			r.MBPerS, _ = strconv.ParseFloat(val, 64)
		}
	}
	if r.NsPerOp == 0 && r.Iterations == 0 {
		return Result{}, false
	}
	return r, true
}
