// Command s2s-benchjson converts `go test -bench` text output (read
// from stdin) into machine-readable JSON on stdout, so `make bench` can
// persist a perf baseline (BENCH_baseline.json) that future PRs
// diff against. Only the standard benchmark line format is parsed;
// everything else (PASS, ok, log lines) is ignored.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | s2s-benchjson > baseline.json
//
// With -compare, the command instead diffs two previously recorded
// baselines benchmark by benchmark and exits non-zero when any shared
// benchmark's ns/op — or allocs/op, or a custom "_ns" metric such as
// first_instance_ns, where both runs recorded it — regressed by more
// than -threshold percent (20 by default), so `make bench-compare`
// can gate perf changes:
//
//	s2s-benchjson -compare old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	// Extra holds custom b.ReportMetric units the line carried beyond
	// the standard four — "first_instance_ns" from BenchmarkE21, for
	// example — keyed by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Baseline is the persisted document.
type Baseline struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

// benchRe matches "BenchmarkName-8  123  456 ns/op ..." lines.
var benchRe = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

func main() {
	compare := flag.Bool("compare", false, "diff two baseline JSON files instead of converting bench output")
	threshold := flag.Float64("threshold", 20, "with -compare, fail on ns/op regressions above this percentage")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "s2s-benchjson: -compare needs exactly two baseline files: old.json new.json")
			os.Exit(2)
		}
		old, err := readBaseline(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "s2s-benchjson:", err)
			os.Exit(2)
		}
		cur, err := readBaseline(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "s2s-benchjson:", err)
			os.Exit(2)
		}
		if regressed := compareBaselines(old, cur, *threshold, os.Stdout); len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "s2s-benchjson: %d benchmark(s) regressed more than %.0f%%: %s\n",
				len(regressed), *threshold, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}

	base := Baseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   []Result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			base.Results = append(base.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-benchjson:", err)
		os.Exit(1)
	}
}

// readBaseline loads one persisted baseline document.
func readBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// compareBaselines prints a per-benchmark delta table and returns the
// names whose ns/op or allocs/op regressed by more than threshold
// percent. Benchmarks present in only one document are reported but
// never fail the compare: added or retired benchmarks are not
// regressions. The allocs gate only applies when the old run recorded a
// non-zero count — 0→0 is flat, and a 0→N jump has no percentage to
// gate on (typically a benchmark that just gained -benchmem).
func compareBaselines(old, cur Baseline, threshold float64, w io.Writer) []string {
	oldBy := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	var regressed []string
	seen := make(map[string]bool, len(cur.Results))
	fmt.Fprintf(w, "%-52s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, nr := range cur.Results {
		seen[nr.Name] = true
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(w, "%-52s %14s %14.0f %9s\n", nr.Name, "-", nr.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if or.NsPerOp > 0 {
			delta = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		}
		mark := ""
		if delta > threshold {
			mark = "  REGRESSED"
			regressed = append(regressed, nr.Name)
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+8.1f%%%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, delta, mark)
		if or.AllocsPerOp != 0 || nr.AllocsPerOp != 0 {
			allocMark := ""
			if or.AllocsPerOp > 0 {
				allocDelta := float64(nr.AllocsPerOp-or.AllocsPerOp) / float64(or.AllocsPerOp) * 100
				if allocDelta > threshold {
					allocMark = "  REGRESSED"
					if mark == "" {
						regressed = append(regressed, nr.Name)
					}
				}
			}
			fmt.Fprintf(w, "%-52s %14d %14d  (allocs/op)%s\n", "", or.AllocsPerOp, nr.AllocsPerOp, allocMark)
		}
		for _, unit := range sharedNsExtras(or.Extra, nr.Extra) {
			ov, nv := or.Extra[unit], nr.Extra[unit]
			extraDelta := (nv - ov) / ov * 100
			extraMark := ""
			if extraDelta > threshold {
				extraMark = "  REGRESSED"
				if mark == "" {
					mark = extraMark
					regressed = append(regressed, nr.Name)
				}
			}
			fmt.Fprintf(w, "%-52s %14.0f %14.0f  (%s)%s\n", "", ov, nv, unit, extraMark)
		}
	}
	var gone []string
	for _, or := range old.Results {
		if !seen[or.Name] {
			gone = append(gone, or.Name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "%-52s %14s %14s %9s\n", name, "-", "-", "removed")
	}
	return regressed
}

// sharedNsExtras returns the custom nanosecond metrics recorded with a
// positive value by both runs, sorted — first_instance_ns and kin. Only
// "_ns"-suffixed units gate: they are time measurements, so lower is
// better and a percentage regression is meaningful; dimensionless
// extras are carried in the JSON but not compared.
func sharedNsExtras(old, cur map[string]float64) []string {
	var units []string
	for unit, ov := range old {
		if !strings.HasSuffix(unit, "_ns") || ov <= 0 {
			continue
		}
		if _, ok := cur[unit]; ok {
			units = append(units, unit)
		}
	}
	sort.Strings(units)
	return units
}

// parseLine parses one benchmark result line; ok is false for
// non-benchmark output.
func parseLine(line string) (Result, bool) {
	m := benchRe.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Result{}, false
	}
	r := Result{Name: m[1], Procs: 1}
	if m[2] != "" {
		r.Procs, _ = strconv.Atoi(m[2])
	}
	r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)

	// The tail is unit pairs: "456.7 ns/op  12 B/op  3 allocs/op  8.9 MB/s".
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "MB/s":
			r.MBPerS, _ = strconv.ParseFloat(val, 64)
		default:
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				continue
			}
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	if r.NsPerOp == 0 && r.Iterations == 0 {
		return Result{}, false
	}
	return r, true
}
