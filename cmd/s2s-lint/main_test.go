package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeTempModule lays out a throwaway module with one known-bad
// package: a bare dropped error (active errcheck finding) and a
// reasoned //lint:ignore discard (suppressed finding). With
// badDirective it adds a directive naming an unregistered analyzer for
// the -ignores audit to flag.
func writeTempModule(t *testing.T, badDirective bool) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmplint\n\ngo 1.24\n")
	write("b/b.go", `// Package b exercises errcheck in the CLI tests.
package b

import "errors"

func f() error { return errors.New("x") }

func g() {
	f()
	//lint:ignore errcheck cli test exercises the reasoned-discard form
	_ = f()
}
`)
	if badDirective {
		write("c/c.go", `// Package c carries a directive the audit must flag.
package c

//lint:ignore nosuchanalyzer misspelled directives suppress nothing
var x = 1
`)
	}
	return dir
}

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = lintMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListShowsEveryAnalyzer(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
	// The concurrency pack specifically must be registered.
	for _, name := range []string{"goroleak", "wgbalance", "errcheck", "leakytimer"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q", name)
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	code, _, errb := runLint(t, "-analyzers", "nosuch")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown analyzer") {
		t.Errorf("stderr = %q, want mention of the unknown analyzer", errb)
	}
}

func TestFindingsExitNonZero(t *testing.T) {
	dir := writeTempModule(t, false)
	// -C from a subdirectory: the driver must walk up to go.mod.
	code, out, errb := runLint(t, "-C", filepath.Join(dir, "b"), "-analyzers", "errcheck")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb)
	}
	if !strings.Contains(out, "errcheck: ") || !strings.Contains(out, "drops its error result") {
		t.Errorf("stdout = %q, want the bare-drop finding", out)
	}
	if strings.Contains(out, "explicitly discarded") {
		t.Errorf("stdout = %q, suppressed finding must not print in text mode", out)
	}
	if !strings.Contains(out, filepath.Join("b", "b.go")+":") {
		t.Errorf("stdout = %q, want module-relative path", out)
	}
}

func TestAnalyzerSubsetRestricts(t *testing.T) {
	dir := writeTempModule(t, false)
	// spanend has nothing to say about this module; the errcheck finding
	// must not leak through a restricted run.
	code, out, errb := runLint(t, "-C", dir, "-analyzers", "spanend")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout: %s, stderr: %s)", code, out, errb)
	}
	if out != "" {
		t.Errorf("stdout = %q, want empty", out)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := writeTempModule(t, false)
	code, out, errb := runLint(t, "-C", dir, "-analyzers", "errcheck", "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSON lines, want 2 (suppressed finding included):\n%s", len(lines), out)
	}
	var got []jsonFinding
	for _, line := range lines {
		var jf jsonFinding
		if err := json.Unmarshal([]byte(line), &jf); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		// Round-trip: re-encoding the decoded object reproduces the line.
		re, err := json.Marshal(jf)
		if err != nil {
			t.Fatal(err)
		}
		if string(re) != line {
			t.Errorf("round trip drifted:\n in: %s\nout: %s", line, re)
		}
		got = append(got, jf)
	}
	for _, jf := range got {
		if jf.Analyzer != "errcheck" {
			t.Errorf("analyzer = %q, want errcheck", jf.Analyzer)
		}
		if jf.File != filepath.Join("b", "b.go") {
			t.Errorf("file = %q, want module-relative b/b.go", jf.File)
		}
		if jf.Line == 0 || jf.Message == "" {
			t.Errorf("incomplete finding: %+v", jf)
		}
	}
	if !got[0].Suppressed && !got[1].Suppressed {
		t.Error("suppressed finding missing from -json output")
	}
	if got[0].Suppressed && got[1].Suppressed {
		t.Error("active finding missing from -json output")
	}
}

func TestIgnoresAudit(t *testing.T) {
	dir := writeTempModule(t, false)
	code, out, errb := runLint(t, "-C", dir, "-ignores")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb)
	}
	want := filepath.Join("b", "b.go") + ":10: errcheck: cli test exercises the reasoned-discard form"
	if !strings.Contains(out, want) {
		t.Errorf("-ignores output = %q, want line %q", out, want)
	}
}

func TestIgnoresAuditFlagsUnregisteredAnalyzer(t *testing.T) {
	dir := writeTempModule(t, true)
	code, out, errb := runLint(t, "-C", dir, "-ignores")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb)
	}
	if !strings.Contains(out, "nosuchanalyzer: misspelled directives suppress nothing") {
		t.Errorf("-ignores output = %q, want the bad directive listed", out)
	}
	if !strings.Contains(errb, "unregistered analyzer") {
		t.Errorf("stderr = %q, want unregistered-analyzer diagnostic", errb)
	}
}
