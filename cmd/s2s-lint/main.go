// Command s2s-lint runs the repository's own static-analysis suite
// (internal/analysis) over every package in the module — invariants go
// vet cannot see: the stdlib-only import rule, %w error wrapping on the
// retry-classification path, span finish obligations, context plumbing,
// fault-injection determinism, and lock/unlock balance.
//
// Usage:
//
//	s2s-lint                    # run every analyzer over the module
//	s2s-lint -analyzers a,b     # run a subset
//	s2s-lint -list              # print the registered analyzers
//	s2s-lint -debug             # additionally print loader type diagnostics
//
// Findings print as file:line: analyzer: message; the exit status is 1
// when any finding is reported. A finding is suppressed by a
// `//lint:ignore <analyzer> <reason>` comment on its line or the line
// above (see docs/STATIC_ANALYSIS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	debug := flag.Bool("debug", false, "print loader type-check diagnostics")
	dir := flag.String("C", ".", "module root to lint")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(*dir, *names, *debug); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-lint:", err)
		os.Exit(2)
	}
}

func run(dir, names string, debug bool) error {
	root, err := findModuleRoot(dir)
	if err != nil {
		return err
	}
	analyzers := analysis.All()
	if names != "" {
		analyzers = nil
		for _, name := range strings.Split(names, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				return fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	units, err := loader.Load()
	if err != nil {
		return err
	}
	if debug {
		for _, e := range loader.TypeErrors {
			fmt.Fprintln(os.Stderr, "s2s-lint: typecheck:", e)
		}
	}

	findings := analysis.Run(units, analyzers)
	for _, f := range findings {
		// Print module-relative paths: stable across checkouts and what
		// editors expect.
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "s2s-lint: %d finding(s)\n", n)
		os.Exit(1)
	}
	return nil
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
	}
}
