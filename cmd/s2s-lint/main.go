// Command s2s-lint runs the repository's own static-analysis suite
// (internal/analysis) over every package in the module — invariants go
// vet cannot see: the stdlib-only import rule, %w error wrapping on the
// retry-classification path, span finish obligations, context plumbing,
// fault-injection determinism, lock/unlock and WaitGroup balance,
// goroutine join seams, dropped errors, and per-iteration timer leaks.
//
// Usage:
//
//	s2s-lint                    # run every analyzer over the module
//	s2s-lint -analyzers a,b     # run a subset
//	s2s-lint -list              # print the registered analyzers
//	s2s-lint -json              # one JSON object per finding line
//	s2s-lint -ignores           # audit //lint:ignore directives
//	s2s-lint -debug             # additionally print loader type diagnostics
//
// Findings print as file:line: analyzer: message; the exit status is 1
// when any active (unsuppressed) finding is reported. A finding is
// suppressed by a `//lint:ignore <analyzer> <reason>` comment on its
// line or the line above (see docs/STATIC_ANALYSIS.md). With -json,
// suppressed findings are emitted too, marked "suppressed": true, so
// downstream tooling can audit what the directives hide.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(lintMain(os.Args[1:], os.Stdout, os.Stderr))
}

// lintMain is the testable entry point: it parses args, runs the suite,
// and returns the process exit code (0 clean, 1 findings, 2 usage or
// loader error).
func lintMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("s2s-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	debug := fs.Bool("debug", false, "print loader type-check diagnostics")
	dir := fs.String("C", ".", "module root to lint")
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding line (includes suppressed findings)")
	ignores := fs.Bool("ignores", false, "audit //lint:ignore directives and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	code, err := run(*dir, *names, *debug, *jsonOut, *ignores, stdout, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "s2s-lint:", err)
		return 2
	}
	return code
}

// jsonFinding is the -json wire shape: one object per line, stable
// field names, module-relative file paths.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(dir, names string, debug, jsonOut, ignores bool, stdout, stderr io.Writer) (int, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return 2, err
	}
	analyzers := analysis.All()
	if names != "" {
		analyzers = nil
		for _, name := range strings.Split(names, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				return 2, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		return 2, err
	}
	units, err := loader.Load()
	if err != nil {
		return 2, err
	}
	if debug {
		for _, e := range loader.TypeErrors {
			fmt.Fprintln(stderr, "s2s-lint: typecheck:", e)
		}
	}

	relativize := func(name string) string {
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}

	if ignores {
		// Audit mode: list every //lint:ignore directive with its reason,
		// and fail if one names an analyzer that is not registered — a
		// misspelled directive suppresses nothing and rots silently.
		bad := 0
		for _, d := range analysis.Directives(units) {
			d.Pos.Filename = relativize(d.Pos.Filename)
			fmt.Fprintln(stdout, d)
			if analysis.ByName(d.Analyzer) == nil {
				fmt.Fprintf(stderr, "s2s-lint: %s:%d: directive names unregistered analyzer %q\n",
					d.Pos.Filename, d.Pos.Line, d.Analyzer)
				bad++
			}
		}
		if bad > 0 {
			return 1, nil
		}
		return 0, nil
	}

	findings := analysis.Run(units, analyzers)
	active := analysis.Active(findings)
	if jsonOut {
		enc := json.NewEncoder(stdout)
		for _, f := range findings {
			jf := jsonFinding{
				File:       relativize(f.Pos.Filename),
				Line:       f.Pos.Line,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			}
			if err := enc.Encode(jf); err != nil {
				return 2, err
			}
		}
	} else {
		for _, f := range active {
			// Print module-relative paths: stable across checkouts and what
			// editors expect.
			f.Pos.Filename = relativize(f.Pos.Filename)
			fmt.Fprintln(stdout, f)
		}
	}
	if n := len(active); n > 0 {
		fmt.Fprintf(stderr, "s2s-lint: %d finding(s)\n", n)
		return 1, nil
	}
	return 0, nil
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
	}
}
