// Command s2s-server runs the S2S middleware as an HTTP endpoint over a
// generated workload world — the B2B deployment shape of the paper: partner
// organizations query one semantic endpoint instead of integrating
// pairwise.
//
// Usage:
//
//	s2s-server [-addr :8080] [-db 2] [-xml 2] [-web 2] [-text 2] [-records 100] [-seed 1] [-pprof]
//	           [-max-queries 0] [-budget 0] [-stream] [-cluster node-id] [-join http://coordinator]
//
// -max-queries caps concurrent /query work; excess requests are shed
// with 503 + Retry-After (docs/ROBUSTNESS.md). -budget bounds each
// query's total extraction time across all sources. -stream runs the
// middleware's /query path through the streaming pipeline
// (docs/STREAMING.md); the chunked /query/stream route streams
// regardless of the flag.
//
// -cluster names this process as a cluster node and layers the
// /cluster/* routes on top of the regular surface (docs/CLUSTER.md).
// Without -join the node is the coordinator and serves partitioned
// scatter-gather queries on /cluster/query; with -join it starts empty,
// joins the coordinator at the given base URL, replicates its catalog,
// and serves restricted extraction sub-requests.
//
// The server exposes /query, /query/stream, /ontology, /sources,
// /mappings, /stats, /metrics, /trace/last, /health/sources, and
// /healthz (see internal/transport; docs/OBSERVABILITY.md documents
// the ops surface).
// With -pprof, the Go runtime profiles are additionally served under
// /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; exposed only with -pprof
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		db         = flag.Int("db", 2, "database sources")
		xml        = flag.Int("xml", 2, "XML sources")
		web        = flag.Int("web", 2, "web page sources")
		text       = flag.Int("text", 2, "plain-text sources")
		records    = flag.Int("records", 100, "records per source")
		seed       = flag.Int64("seed", 1, "workload generation seed")
		pprofOn    = flag.Bool("pprof", false, "serve Go runtime profiles under /debug/pprof/")
		dumpConfig = flag.String("dump-config", "", "write the generated middleware configuration to this file and continue")
		maxQueries = flag.Int("max-queries", 0, "concurrent /query cap; beyond it requests are shed with 503 + Retry-After (0 disables)")
		budget     = flag.Duration("budget", 0, "per-query deadline budget across all sources (0 disables)")
		stream     = flag.Bool("stream", false, "run /query through the streaming pipeline (see docs/STREAMING.md)")
		clusterID  = flag.String("cluster", "", "cluster node ID; enables the /cluster/* routes (see docs/CLUSTER.md)")
		join       = flag.String("join", "", "coordinator base URL to join as a member (requires -cluster); empty makes this node the coordinator")
		advertise  = flag.String("advertise", "", "base URL other cluster nodes reach this node at; defaults to http://localhost<addr>")
	)
	flag.Parse()

	if err := run(*addr, workload.Spec{
		DBSources: *db, XMLSources: *xml, WebSources: *web, TextSources: *text,
		RecordsPerSource: *records, Seed: *seed,
	}, *dumpConfig, *pprofOn, *maxQueries, *budget, *stream, *clusterID, *join, *advertise); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-server:", err)
		os.Exit(1)
	}
}

func run(addr string, spec workload.Spec, dumpConfig string, pprofOn bool, maxQueries int, budget time.Duration, stream bool, clusterID, join, advertise string) error {
	if join != "" && clusterID == "" {
		return fmt.Errorf("-join requires -cluster <node-id>")
	}
	world, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog,
		extract.Options{QueryBudget: budget, Streaming: stream})
	if err != nil {
		return err
	}
	// A joining member starts with an empty catalog — its sources and
	// mappings replicate from the coordinator — but shares the world's
	// backends so it can serve any source it is assigned.
	if join == "" {
		if err := world.Apply(mw); err != nil {
			return err
		}
	}
	if dumpConfig != "" {
		cfg, err := config.FromMiddleware(mw)
		if err != nil {
			return err
		}
		if err := config.SaveFile(dumpConfig, cfg); err != nil {
			return err
		}
		log.Printf("s2s-server: wrote configuration to %s", dumpConfig)
	}
	srv := transport.NewServer(mw, transport.WithMaxConcurrentQueries(maxQueries))
	handler := http.Handler(srv)
	if clusterID != "" {
		if advertise == "" {
			advertise = "http://localhost" + displayAddr(addr)
		}
		node, err := cluster.NewNode(srv, cluster.Options{
			ID: clusterID, Addr: advertise, CoordinatorURL: join,
		})
		if err != nil {
			return err
		}
		if err := node.Start(context.Background()); err != nil {
			return err
		}
		defer node.Stop()
		handler = node
		if join == "" {
			log.Printf("s2s-server: cluster coordinator %q serving /cluster/query", clusterID)
		} else {
			log.Printf("s2s-server: cluster member %q joined %s", clusterID, join)
		}
	}
	if pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("s2s-server: pprof enabled at http://localhost%s/debug/pprof/", displayAddr(addr))
	}
	log.Printf("s2s-server: %d sources, %d records, listening on %s",
		len(world.Definitions), len(world.Records), addr)
	log.Printf("s2s-server: try  curl '%s'",
		"http://localhost"+displayAddr(addr)+"/query?q=SELECT+product+WHERE+brand%3D%27Seiko%27&format=json")
	log.Printf("s2s-server: ops  curl http://localhost%s/metrics  |  curl http://localhost%s/trace/last",
		displayAddr(addr), displayAddr(addr))
	return http.ListenAndServe(addr, handler)
}

// displayAddr normalizes a listen address for log-friendly URLs.
func displayAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return addr
	}
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		return addr[i:]
	}
	return addr
}
