// Command s2s-server runs the S2S middleware as an HTTP endpoint over a
// generated workload world — the B2B deployment shape of the paper: partner
// organizations query one semantic endpoint instead of integrating
// pairwise.
//
// Usage:
//
//	s2s-server [-addr :8080] [-db 2] [-xml 2] [-web 2] [-text 2] [-records 100] [-seed 1] [-pprof]
//	           [-max-queries 0] [-budget 0] [-stream] [-stats-file path]
//	           [-cluster node-id] [-join http://coordinator]
//
// -max-queries caps concurrent /query work; excess requests are shed
// with 503 + Retry-After (docs/ROBUSTNESS.md). -budget bounds each
// query's total extraction time across all sources. -stream runs the
// middleware's /query path through the streaming pipeline
// (docs/STREAMING.md); the chunked /query/stream route streams
// regardless of the flag.
//
// -stats-file persists the extractor's per-source cost statistics
// (internal/stats) across restarts: the file is loaded on start when it
// exists and rewritten on graceful shutdown (SIGINT/SIGTERM), so the
// planner's cost-based source ordering starts warm instead of cold
// (docs/PERFORMANCE.md).
//
// -cluster names this process as a cluster node and layers the
// /cluster/* routes on top of the regular surface (docs/CLUSTER.md).
// Without -join the node is the coordinator and serves partitioned
// scatter-gather queries on /cluster/query; with -join it starts empty,
// joins the coordinator at the given base URL, replicates its catalog,
// and serves restricted extraction sub-requests.
//
// The server exposes /query, /query/stream, /ontology, /sources,
// /mappings, /stats, /metrics, /trace/last, /health/sources, and
// /healthz (see internal/transport; docs/OBSERVABILITY.md documents
// the ops surface).
// With -pprof, the Go runtime profiles are additionally served under
// /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; exposed only with -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		db         = flag.Int("db", 2, "database sources")
		xml        = flag.Int("xml", 2, "XML sources")
		web        = flag.Int("web", 2, "web page sources")
		text       = flag.Int("text", 2, "plain-text sources")
		records    = flag.Int("records", 100, "records per source")
		seed       = flag.Int64("seed", 1, "workload generation seed")
		pprofOn    = flag.Bool("pprof", false, "serve Go runtime profiles under /debug/pprof/")
		dumpConfig = flag.String("dump-config", "", "write the generated middleware configuration to this file and continue")
		maxQueries = flag.Int("max-queries", 0, "concurrent /query cap; beyond it requests are shed with 503 + Retry-After (0 disables)")
		budget     = flag.Duration("budget", 0, "per-query deadline budget across all sources (0 disables)")
		stream     = flag.Bool("stream", false, "run /query through the streaming pipeline (see docs/STREAMING.md)")
		statsFile  = flag.String("stats-file", "", "persist per-source cost statistics here across restarts (loaded on start, saved on graceful shutdown)")
		clusterID  = flag.String("cluster", "", "cluster node ID; enables the /cluster/* routes (see docs/CLUSTER.md)")
		join       = flag.String("join", "", "coordinator base URL to join as a member (requires -cluster); empty makes this node the coordinator")
		advertise  = flag.String("advertise", "", "base URL other cluster nodes reach this node at; defaults to http://localhost<addr>")
	)
	flag.Parse()

	if err := run(*addr, workload.Spec{
		DBSources: *db, XMLSources: *xml, WebSources: *web, TextSources: *text,
		RecordsPerSource: *records, Seed: *seed,
	}, *dumpConfig, *pprofOn, *maxQueries, *budget, *stream, *statsFile, *clusterID, *join, *advertise); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-server:", err)
		os.Exit(1)
	}
}

func run(addr string, spec workload.Spec, dumpConfig string, pprofOn bool, maxQueries int, budget time.Duration, stream bool, statsFile, clusterID, join, advertise string) error {
	if join != "" && clusterID == "" {
		return fmt.Errorf("-join requires -cluster <node-id>")
	}
	world, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog,
		extract.Options{QueryBudget: budget, Streaming: stream})
	if err != nil {
		return err
	}
	// A joining member starts with an empty catalog — its sources and
	// mappings replicate from the coordinator — but shares the world's
	// backends so it can serve any source it is assigned.
	if join == "" {
		if err := world.Apply(mw); err != nil {
			return err
		}
	}
	if statsFile != "" {
		if err := loadStats(mw, statsFile); err != nil {
			return err
		}
	}
	if dumpConfig != "" {
		cfg, err := config.FromMiddleware(mw)
		if err != nil {
			return err
		}
		if err := config.SaveFile(dumpConfig, cfg); err != nil {
			return err
		}
		log.Printf("s2s-server: wrote configuration to %s", dumpConfig)
	}
	srv := transport.NewServer(mw, transport.WithMaxConcurrentQueries(maxQueries))
	handler := http.Handler(srv)
	if clusterID != "" {
		if advertise == "" {
			advertise = "http://localhost" + displayAddr(addr)
		}
		node, err := cluster.NewNode(srv, cluster.Options{
			ID: clusterID, Addr: advertise, CoordinatorURL: join,
		})
		if err != nil {
			return err
		}
		if err := node.Start(context.Background()); err != nil {
			return err
		}
		defer node.Stop()
		handler = node
		if join == "" {
			log.Printf("s2s-server: cluster coordinator %q serving /cluster/query", clusterID)
		} else {
			log.Printf("s2s-server: cluster member %q joined %s", clusterID, join)
		}
	}
	if pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("s2s-server: pprof enabled at http://localhost%s/debug/pprof/", displayAddr(addr))
	}
	log.Printf("s2s-server: %d sources, %d records, listening on %s",
		len(world.Definitions), len(world.Records), addr)
	log.Printf("s2s-server: try  curl '%s'",
		"http://localhost"+displayAddr(addr)+"/query?q=SELECT+product+WHERE+brand%3D%27Seiko%27&format=json")
	log.Printf("s2s-server: ops  curl http://localhost%s/metrics  |  curl http://localhost%s/trace/last",
		displayAddr(addr), displayAddr(addr))
	return serve(addr, handler, func() error {
		if statsFile == "" {
			return nil
		}
		return saveStats(mw, statsFile)
	})
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains in-flight
// requests and runs onShutdown (the stats snapshot) before returning.
func serve(addr string, handler http.Handler, onShutdown func() error) error {
	srv := &http.Server{Addr: addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("s2s-server: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("s2s-server: shutdown: %v", err)
	}
	return onShutdown()
}

// loadStats restores the cost-statistics registry from path. A missing
// file is a cold start, not an error; a corrupt one refuses to start
// rather than silently running cold.
func loadStats(mw *core.Middleware, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		log.Printf("s2s-server: no stats file at %s, starting cold", path)
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := mw.SourceStats().Load(f); err != nil {
		return fmt.Errorf("loading %s: %w", path, err)
	}
	log.Printf("s2s-server: loaded cost statistics for %d sources from %s",
		mw.SourceStats().Len(), path)
	return nil
}

// saveStats snapshots the cost-statistics registry to path, writing to
// a temporary sibling first so a crash mid-write never corrupts the
// previous snapshot.
func saveStats(mw *core.Middleware, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := mw.SourceStats().Save(f); err != nil {
		//lint:ignore errcheck the Save error is what matters; the file is removed next anyway
		f.Close()
		//lint:ignore errcheck best-effort cleanup of the partial temp file; the Save error is what matters
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		//lint:ignore errcheck best-effort cleanup of the partial temp file; the Close error is what matters
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	log.Printf("s2s-server: saved cost statistics for %d sources to %s",
		mw.SourceStats().Len(), path)
	return nil
}

// displayAddr normalizes a listen address for log-friendly URLs.
func displayAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return addr
	}
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		return addr[i:]
	}
	return addr
}
