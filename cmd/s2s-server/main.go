// Command s2s-server runs the S2S middleware as an HTTP endpoint over a
// generated workload world — the B2B deployment shape of the paper: partner
// organizations query one semantic endpoint instead of integrating
// pairwise.
//
// Usage:
//
//	s2s-server [-addr :8080] [-db 2] [-xml 2] [-web 2] [-text 2] [-records 100] [-seed 1] [-pprof]
//	           [-max-queries 0] [-budget 0] [-stream]
//
// -max-queries caps concurrent /query work; excess requests are shed
// with 503 + Retry-After (docs/ROBUSTNESS.md). -budget bounds each
// query's total extraction time across all sources. -stream runs the
// middleware's /query path through the streaming pipeline
// (docs/STREAMING.md); the chunked /query/stream route streams
// regardless of the flag.
//
// The server exposes /query, /query/stream, /ontology, /sources,
// /mappings, /stats, /metrics, /trace/last, /health/sources, and
// /healthz (see internal/transport; docs/OBSERVABILITY.md documents
// the ops surface).
// With -pprof, the Go runtime profiles are additionally served under
// /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; exposed only with -pprof
	"os"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		db         = flag.Int("db", 2, "database sources")
		xml        = flag.Int("xml", 2, "XML sources")
		web        = flag.Int("web", 2, "web page sources")
		text       = flag.Int("text", 2, "plain-text sources")
		records    = flag.Int("records", 100, "records per source")
		seed       = flag.Int64("seed", 1, "workload generation seed")
		pprofOn    = flag.Bool("pprof", false, "serve Go runtime profiles under /debug/pprof/")
		dumpConfig = flag.String("dump-config", "", "write the generated middleware configuration to this file and continue")
		maxQueries = flag.Int("max-queries", 0, "concurrent /query cap; beyond it requests are shed with 503 + Retry-After (0 disables)")
		budget     = flag.Duration("budget", 0, "per-query deadline budget across all sources (0 disables)")
		stream     = flag.Bool("stream", false, "run /query through the streaming pipeline (see docs/STREAMING.md)")
	)
	flag.Parse()

	if err := run(*addr, workload.Spec{
		DBSources: *db, XMLSources: *xml, WebSources: *web, TextSources: *text,
		RecordsPerSource: *records, Seed: *seed,
	}, *dumpConfig, *pprofOn, *maxQueries, *budget, *stream); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-server:", err)
		os.Exit(1)
	}
}

func run(addr string, spec workload.Spec, dumpConfig string, pprofOn bool, maxQueries int, budget time.Duration, stream bool) error {
	world, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog,
		extract.Options{QueryBudget: budget, Streaming: stream})
	if err != nil {
		return err
	}
	if err := world.Apply(mw); err != nil {
		return err
	}
	if dumpConfig != "" {
		cfg, err := config.FromMiddleware(mw)
		if err != nil {
			return err
		}
		if err := config.SaveFile(dumpConfig, cfg); err != nil {
			return err
		}
		log.Printf("s2s-server: wrote configuration to %s", dumpConfig)
	}
	handler := http.Handler(transport.NewServer(mw, transport.WithMaxConcurrentQueries(maxQueries)))
	if pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("s2s-server: pprof enabled at http://localhost%s/debug/pprof/", displayAddr(addr))
	}
	log.Printf("s2s-server: %d sources, %d records, listening on %s",
		len(world.Definitions), len(world.Records), addr)
	log.Printf("s2s-server: try  curl '%s'",
		"http://localhost"+displayAddr(addr)+"/query?q=SELECT+product+WHERE+brand%3D%27Seiko%27&format=json")
	log.Printf("s2s-server: ops  curl http://localhost%s/metrics  |  curl http://localhost%s/trace/last",
		displayAddr(addr), displayAddr(addr))
	return http.ListenAndServe(addr, handler)
}

// displayAddr normalizes a listen address for log-friendly URLs.
func displayAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return addr
	}
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		return addr[i:]
	}
	return addr
}
