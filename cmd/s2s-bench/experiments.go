package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/rdf"
	"repro/internal/reason"
	"repro/internal/s2sql"
	"repro/internal/sparql"
	"repro/internal/transport"
	"repro/internal/workload"
)

const paperQuery = "SELECT product WHERE brand='Seiko' AND case='stainless-steel'"

// buildMiddleware wires a generated world into a middleware.
func buildMiddleware(spec workload.Spec, opts extract.Options) (*core.Middleware, *workload.World, error) {
	world, err := workload.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := world.Apply(mw); err != nil {
		return nil, nil, err
	}
	return mw, world, nil
}

// timeIt runs f repeatedly and returns the mean wall time.
func timeIt(iters int, f func() error) (time.Duration, error) {
	if iters < 1 {
		iters = 1
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// runE1 — end-to-end: one query over all four heterogeneous source kinds.
func runE1(cfg config) error {
	recordSizes := []int{10, 100, 1000}
	if cfg.quick {
		recordSizes = []int{10, 100}
	}
	t := &table{header: []string{"records/source", "sources", "matched", "related", "query", "plan", "extract", "generate"}}
	for _, records := range recordSizes {
		mw, world, err := buildMiddleware(workload.Spec{
			DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
			RecordsPerSource: records, Seed: 1,
		}, extract.Options{})
		if err != nil {
			return err
		}
		var res *instance.Result
		mean, err := timeIt(3, func() error {
			r, err := mw.Query(context.Background(), paperQuery)
			res = r
			return err
		})
		if err != nil {
			return err
		}
		want := world.CountMatching(func(r workload.Record) bool {
			return r.Brand == "Seiko" && r.Case == "stainless-steel"
		})
		if len(res.Matched) != want {
			return fmt.Errorf("E1: matched %d, ground truth %d", len(res.Matched), want)
		}
		s := mw.Stats()
		n := time.Duration(s.Queries)
		t.add(fmt.Sprint(records), "4", fmt.Sprint(len(res.Matched)), fmt.Sprint(len(res.Related)),
			mean.Round(time.Microsecond).String(),
			(s.PlanTime / n).Round(time.Microsecond).String(),
			(s.ExtractTime / n).Round(time.Microsecond).String(),
			(s.GenerateTime / n).Round(time.Microsecond).String())
	}
	t.print()
	fmt.Println("  matched counts verified against workload ground truth")
	return nil
}

// runE2 — ontology scaling: plan cost and OWL export size as the schema
// grows.
func runE2(cfg config) error {
	sizes := []int{10, 100, 1000, 5000}
	if cfg.quick {
		sizes = []int{10, 100, 1000}
	}
	t := &table{header: []string{"classes", "attributes", "plan", "owl-export", "owl-triples"}}
	for _, classes := range sizes {
		ont := workload.GrowOntology(classes, 3, 7)
		// Query the deepest class to stress closure computation; constrain
		// by the dotted unique ID, since "attr0" repeats along the chain.
		var deepest, deepestPath string
		depth := -1
		for _, c := range ont.Classes() {
			if d := strings.Count(c.Path(), "."); d > depth {
				depth = d
				deepest = c.Name
				deepestPath = c.Path()
			}
		}
		q := fmt.Sprintf("SELECT %s WHERE %s.attr0 = 'x'", deepest, deepestPath)
		planMean, err := timeIt(20, func() error {
			_, err := s2sql.ParseAndPlan(q, ont)
			return err
		})
		if err != nil {
			return err
		}
		var triples int
		exportMean, err := timeIt(3, func() error {
			g := ont.ToGraph()
			triples = g.Len()
			return nil
		})
		if err != nil {
			return err
		}
		t.add(fmt.Sprint(classes), fmt.Sprint(classes*3),
			planMean.Round(time.Microsecond).String(),
			exportMean.Round(time.Microsecond).String(),
			fmt.Sprint(triples))
	}
	t.print()
	return nil
}

// runE3 — attribute registration throughput and extraction-schema lookup.
func runE3(cfg config) error {
	sizes := []int{100, 1000, 10000}
	if cfg.quick {
		sizes = []int{100, 1000}
	}
	t := &table{header: []string{"mappings", "register-total", "per-mapping", "schema-lookup"}}
	for _, n := range sizes {
		ont := workload.GrowOntology(n, 1, 3)
		reg := datasource.NewRegistry()
		if err := reg.Register(datasource.Definition{ID: "txt", Kind: datasource.KindText, Path: "doc.txt"}); err != nil {
			return err
		}
		repo := mapping.NewRepository(ont, reg)
		attrs := ont.Attributes()
		start := time.Now()
		for i, a := range attrs {
			if i >= n {
				break
			}
			if err := repo.Register(mapping.Entry{
				AttributeID: a.ID(), SourceID: "txt",
				Rule: mapping.Rule{Language: mapping.LangRegex, Code: `v=([0-9]+)`},
			}); err != nil {
				return err
			}
		}
		regTotal := time.Since(start)
		ids := repo.MappedAttributeIDs()
		lookupMean, err := timeIt(10, func() error {
			_, _, err := repo.Schema(ids)
			return err
		})
		if err != nil {
			return err
		}
		t.add(fmt.Sprint(len(ids)), regTotal.Round(time.Microsecond).String(),
			(regTotal / time.Duration(len(ids))).Round(time.Nanosecond).String(),
			lookupMean.Round(time.Microsecond).String())
	}
	t.print()
	return nil
}

// runE4 — the four-step extraction process: per-phase latency at growing
// source counts, plus the sequential-vs-concurrent ablation.
func runE4(cfg config) error {
	sourceCounts := []int{1, 4, 16, 64}
	if cfg.quick {
		sourceCounts = []int{1, 4, 16}
	}
	t := &table{header: []string{"sources", "schema(steps 2-3)", "par=8", "seq", "speedup", "par=8 (2ms RTT)", "seq (2ms RTT)", "speedup"}}
	for _, n := range sourceCounts {
		per := n / 4
		spec := workload.Spec{
			DBSources: per, XMLSources: per, WebSources: per, TextSources: n - 3*per,
			RecordsPerSource: 50, Seed: 2,
		}
		world, err := workload.Generate(spec)
		if err != nil {
			return err
		}
		run := func(parallelism int, latency time.Duration) (time.Duration, time.Duration, error) {
			mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{Parallelism: parallelism})
			if err != nil {
				return 0, 0, err
			}
			if err := world.Apply(mw); err != nil {
				return 0, 0, err
			}
			plan, err := s2sql.ParseAndPlan("SELECT product", world.Ontology)
			if err != nil {
				return 0, 0, err
			}
			mgr := extract.NewManager(mw.Mappings(), extract.FromCatalog(world.Catalog),
				extract.Options{Parallelism: parallelism, SimulatedLatency: latency, Timeout: 5 * time.Minute})
			// Warm up once so regexp/rule caches don't skew the first
			// configuration measured.
			if _, err := mgr.Extract(context.Background(), plan.AttributeIDs()); err != nil {
				return 0, 0, err
			}
			var schemaD, extractD time.Duration
			const iters = 3
			for i := 0; i < iters; i++ {
				rs, err := mgr.Extract(context.Background(), plan.AttributeIDs())
				if err != nil {
					return 0, 0, err
				}
				if len(rs.Errors) > 0 {
					return 0, 0, fmt.Errorf("extraction errors: %v", rs.Errors)
				}
				schemaD += rs.Stats.SchemaDuration
				extractD += rs.Stats.ExtractDuration
			}
			return schemaD / iters, extractD / iters, nil
		}
		schemaPar, extractPar, err := run(8, 0)
		if err != nil {
			return err
		}
		_, extractSeq, err := run(1, 0)
		if err != nil {
			return err
		}
		const rtt = 2 * time.Millisecond
		_, extractParRTT, err := run(8, rtt)
		if err != nil {
			return err
		}
		_, extractSeqRTT, err := run(1, rtt)
		if err != nil {
			return err
		}
		t.add(fmt.Sprint(n), schemaPar.Round(time.Microsecond).String(),
			extractPar.Round(time.Microsecond).String(),
			extractSeq.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(extractSeq)/float64(extractPar)),
			extractParRTT.Round(time.Microsecond).String(),
			extractSeqRTT.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(extractSeqRTT)/float64(extractParRTT)))
	}
	t.print()
	fmt.Println("  RTT columns add a simulated 2ms network round trip per autonomous source")
	return nil
}

// runE5 — record-count scaling: extraction and generation should grow
// linearly in records per source.
func runE5(cfg config) error {
	recordCounts := []int{1, 10, 100, 1000, 10000}
	if cfg.quick {
		recordCounts = []int{1, 10, 100, 1000}
	}
	t := &table{header: []string{"records", "instances", "query", "us/record"}}
	for _, n := range recordCounts {
		mw, _, err := buildMiddleware(workload.Spec{
			DBSources: 1, XMLSources: 1, RecordsPerSource: n, Seed: 3,
		}, extract.Options{})
		if err != nil {
			return err
		}
		var matched int
		mean, err := timeIt(3, func() error {
			res, err := mw.Query(context.Background(), "SELECT product")
			if err != nil {
				return err
			}
			matched = len(res.Matched)
			return nil
		})
		if err != nil {
			return err
		}
		if matched != 2*n {
			return fmt.Errorf("E5: matched %d, want %d", matched, 2*n)
		}
		t.add(fmt.Sprint(n), fmt.Sprint(matched),
			mean.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", float64(mean.Microseconds())/float64(matched)))
	}
	t.print()
	return nil
}

// runE6 — query handling is microseconds and independent of data size.
func runE6(cfg config) error {
	ont := workload.MustGenerate(workload.Spec{Seed: 1}).Ontology
	preds := []int{1, 2, 4, 8, 16}
	attrs := []string{"brand", "model", "case", "price", "water_resistance"}
	t := &table{header: []string{"predicates", "parse+plan", "attribute-list"}}
	for _, n := range preds {
		var conds []string
		for i := 0; i < n; i++ {
			a := attrs[i%len(attrs)]
			if a == "price" {
				conds = append(conds, "price > 10")
			} else if a == "water_resistance" {
				conds = append(conds, "water_resistance >= 50")
			} else {
				conds = append(conds, fmt.Sprintf("%s != 'none%d'", a, i))
			}
		}
		q := "SELECT product WHERE " + strings.Join(conds, " AND ")
		var attrCount int
		mean, err := timeIt(200, func() error {
			plan, err := s2sql.ParseAndPlan(q, ont)
			if err != nil {
				return err
			}
			attrCount = len(plan.Attributes)
			return nil
		})
		if err != nil {
			return err
		}
		t.add(fmt.Sprint(n), mean.Round(100*time.Nanosecond).String(), fmt.Sprint(attrCount))
	}
	t.print()
	return nil
}

// runE7 — serialization formats over a large result.
func runE7(cfg config) error {
	records := 5000
	if cfg.quick {
		records = 1000
	}
	mw, _, err := buildMiddleware(workload.Spec{DBSources: 1, XMLSources: 1, RecordsPerSource: records, Seed: 4}, extract.Options{})
	if err != nil {
		return err
	}
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		return err
	}
	gen := mw.Generator()
	t := &table{header: []string{"format", "serialize", "bytes", "bytes/instance"}}
	for _, f := range []instance.Format{
		instance.FormatOWL, instance.FormatTurtle, instance.FormatNTriples,
		instance.FormatXML, instance.FormatJSON, instance.FormatText,
	} {
		var size int
		mean, err := timeIt(3, func() error {
			out, err := gen.SerializeString(res, f)
			size = len(out)
			return err
		})
		if err != nil {
			return err
		}
		t.add(f.String(), mean.Round(time.Microsecond).String(), fmt.Sprint(size),
			fmt.Sprintf("%.0f", float64(size)/float64(len(res.Matched))))
	}
	t.print()
	fmt.Printf("  instances serialized: %d matched + %d related\n", len(res.Matched), len(res.Related))
	return nil
}

// runE8 — semantic middleware vs hand-coded syntactic baseline.
func runE8(cfg config) error {
	records := 250
	if cfg.quick {
		records = 100
	}
	t := &table{header: []string{"sources", "records", "s2s-query", "baseline-query", "overhead", "results-agree"}}
	for _, perKind := range []int{1, 2, 4} {
		spec := workload.Spec{
			DBSources: perKind, XMLSources: perKind, WebSources: perKind, TextSources: perKind,
			RecordsPerSource: records, Seed: 5,
		}
		mw, world, err := buildMiddleware(spec, extract.Options{})
		if err != nil {
			return err
		}
		var s2sMatched int
		s2sMean, err := timeIt(3, func() error {
			res, err := mw.Query(context.Background(), paperQuery)
			if err != nil {
				return err
			}
			s2sMatched = len(res.Matched)
			return nil
		})
		if err != nil {
			return err
		}
		it := baseline.New(world.Catalog, world.Definitions)
		var baseMatched int
		baseMean, err := timeIt(3, func() error {
			ps, err := it.Query(func(p baseline.Product) bool {
				return p.Brand == "Seiko" && p.Case == "stainless-steel"
			})
			if err != nil {
				return err
			}
			baseMatched = len(ps)
			return nil
		})
		if err != nil {
			return err
		}
		agree := "yes"
		if s2sMatched != baseMatched {
			agree = fmt.Sprintf("NO (%d vs %d)", s2sMatched, baseMatched)
		}
		t.add(fmt.Sprint(perKind*4), fmt.Sprint(perKind*4*records),
			s2sMean.Round(time.Microsecond).String(),
			baseMean.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(s2sMean)/float64(baseMean)),
			agree)
	}
	t.print()
	fmt.Println("  integration cost: S2S adds a source with mapping registrations only;")
	fmt.Println("  the baseline requires a new hand-written Go code path per source format")
	return nil
}

// runE9 — per-extractor-type cost for the same logical data.
func runE9(cfg config) error {
	records := 500
	if cfg.quick {
		records = 200
	}
	t := &table{header: []string{"extractor", "records", "query", "us/record"}}
	kinds := []struct {
		name string
		spec workload.Spec
	}{
		{"sql (database)", workload.Spec{DBSources: 1, RecordsPerSource: records, Seed: 6}},
		{"xpath (xml)", workload.Spec{XMLSources: 1, RecordsPerSource: records, Seed: 6}},
		{"webl (web page)", workload.Spec{WebSources: 1, RecordsPerSource: records, Seed: 6}},
		{"regex (text)", workload.Spec{TextSources: 1, RecordsPerSource: records, Seed: 6}},
	}
	for _, k := range kinds {
		mw, _, err := buildMiddleware(k.spec, extract.Options{})
		if err != nil {
			return err
		}
		var matched int
		mean, err := timeIt(3, func() error {
			res, err := mw.Query(context.Background(), "SELECT product")
			if err != nil {
				return err
			}
			if len(res.Errors) > 0 {
				return fmt.Errorf("%v", res.Errors)
			}
			matched = len(res.Matched)
			return nil
		})
		if err != nil {
			return err
		}
		t.add(k.name, fmt.Sprint(matched), mean.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", float64(mean.Microseconds())/float64(matched)))
	}
	t.print()
	return nil
}

// runE11 — ablation: per-rule result caching. The paper argues mappings are
// stable; caching extends that bet to the extracted values.
func runE11(cfg config) error {
	records := 500
	if cfg.quick {
		records = 200
	}
	spec := workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: records, Seed: 8,
	}
	t := &table{header: []string{"cache", "first-query", "steady-state", "speedup"}}
	var baselineSteady time.Duration
	for _, ttl := range []time.Duration{0, time.Minute} {
		mw, _, err := buildMiddleware(spec, extract.Options{CacheTTL: ttl})
		if err != nil {
			return err
		}
		ctx := context.Background()
		first, err := timeIt(1, func() error {
			_, err := mw.Query(ctx, paperQuery)
			return err
		})
		if err != nil {
			return err
		}
		steady, err := timeIt(5, func() error {
			_, err := mw.Query(ctx, paperQuery)
			return err
		})
		if err != nil {
			return err
		}
		label := "off"
		speedup := "1.00x"
		if ttl > 0 {
			label = "ttl=1m"
			speedup = fmt.Sprintf("%.2fx", float64(baselineSteady)/float64(steady))
		} else {
			baselineSteady = steady
		}
		t.add(label, first.Round(time.Microsecond).String(), steady.Round(time.Microsecond).String(), speedup)
	}
	t.print()
	fmt.Println("  caching skips rule re-execution; instance generation still runs per query")
	return nil
}

// runE12 — semantic processing over the middleware's output: RDFS
// materialization and SPARQL querying (the paper's §5 claim made concrete).
func runE12(cfg config) error {
	sizes := []int{100, 1000, 5000}
	if cfg.quick {
		sizes = []int{100, 1000}
	}
	t := &table{header: []string{"instances", "graph-triples", "materialize", "inferred-triples", "sparql-query", "products(raw)", "products(inferred)"}}
	for _, n := range sizes {
		mw, _, err := buildMiddleware(workload.Spec{DBSources: 1, RecordsPerSource: n, Seed: 9}, extract.Options{})
		if err != nil {
			return err
		}
		res, err := mw.Query(context.Background(), "SELECT product")
		if err != nil {
			return err
		}
		graph, err := mw.Generator().ToGraph(res)
		if err != nil {
			return err
		}
		schema := mw.Ontology().ToGraph()
		var materialized *rdf.Graph
		matTime, err := timeIt(3, func() error {
			materialized, err = reason.Materialize(schema, graph)
			return err
		})
		if err != nil {
			return err
		}
		const q = `PREFIX ont: <http://s2s.uma.pt/watch#> SELECT ?x WHERE { ?x a ont:product . }`
		raw, err := sparql.Select(graph, q)
		if err != nil {
			return err
		}
		var inferred *sparql.Result
		sparqlTime, err := timeIt(3, func() error {
			inferred, err = sparql.Select(materialized, q)
			return err
		})
		if err != nil {
			return err
		}
		t.add(fmt.Sprint(len(res.Matched)), fmt.Sprint(graph.Len()),
			matTime.Round(time.Microsecond).String(),
			fmt.Sprint(materialized.Len()-graph.Len()),
			sparqlTime.Round(time.Microsecond).String(),
			fmt.Sprint(len(raw.Bindings)), fmt.Sprint(len(inferred.Bindings)))
	}
	t.print()
	fmt.Println("  reasoning makes subclass knowledge queryable: watches answer product queries")
	return nil
}

// selectorEntries maps the workload's web page markup with CSS selector
// rules instead of WebL programs.
func selectorEntries(sourceID string) []mapping.Entry {
	rule := func(attr, sel string) mapping.Entry {
		return mapping.Entry{
			AttributeID: attr, SourceID: sourceID,
			Rule: mapping.Rule{Language: mapping.LangSelector, Code: sel},
		}
	}
	return []mapping.Entry{
		rule("thing.product.brand", "div.product b.brand::text"),
		rule("thing.product.model", "div.product span.model::text"),
		rule("thing.product.watch.case", "div.product span.case::text"),
		rule("thing.product.price", "div.product span.price::text"),
	}
}

// runE13 — ablation: the paper-era WebL wrapper language vs a CSS-selector
// wrapper over the same generated pages, same attributes, same answers.
func runE13(cfg config) error {
	records := 500
	if cfg.quick {
		records = 200
	}
	world, err := workload.Generate(workload.Spec{WebSources: 1, RecordsPerSource: records, Seed: 10})
	if err != nil {
		return err
	}
	t := &table{header: []string{"wrapper", "matched", "query", "us/record", "agree"}}

	var counts [2]int
	run := func(name string, entries []mapping.Entry, idx int) error {
		mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
		if err != nil {
			return err
		}
		for _, def := range world.Definitions {
			if err := mw.RegisterSource(def); err != nil {
				return err
			}
		}
		for _, e := range entries {
			if err := mw.RegisterMapping(e); err != nil {
				return err
			}
		}
		var matched int
		mean, err := timeIt(3, func() error {
			res, err := mw.Query(context.Background(), "SELECT product")
			if err != nil {
				return err
			}
			if len(res.Errors) > 0 {
				return fmt.Errorf("%v", res.Errors)
			}
			matched = len(res.Matched)
			return nil
		})
		if err != nil {
			return err
		}
		counts[idx] = matched
		agree := ""
		if idx == 1 {
			agree = "yes"
			if counts[0] != counts[1] {
				agree = fmt.Sprintf("NO (%d vs %d)", counts[0], counts[1])
			}
		}
		t.add(name, fmt.Sprint(matched), mean.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", float64(mean.Microseconds())/float64(matched)), agree)
		return nil
	}

	// WebL entries come from the workload generator itself.
	var weblEntries []mapping.Entry
	for _, e := range world.Entries {
		if e.Rule.Language == mapping.LangWebL && e.AttributeID != "thing.provider.name" {
			weblEntries = append(weblEntries, e)
		}
	}
	if err := run("webl", weblEntries, 0); err != nil {
		return err
	}
	if err := run("css selector", selectorEntries(world.Definitions[0].ID), 1); err != nil {
		return err
	}
	t.print()
	fmt.Println("  both wrappers answer identically over the same pages")
	return nil
}

// runE14 — the mapping-granularity ablation DESIGN.md §5 calls out. The
// paper maps "on ontology attributes rather than classes" (§2.3.1): every
// attribute carries its own rule, so a database source runs one SELECT per
// attribute. A class-granular design shares one multi-column SELECT across
// the class's attributes via Rule.Column; with the rule cache on, the
// shared statement executes once.
func runE14(cfg config) error {
	records := 2000
	if cfg.quick {
		records = 500
	}
	world, err := workload.Generate(workload.Spec{DBSources: 1, RecordsPerSource: records, Seed: 11})
	if err != nil {
		return err
	}
	def := world.Definitions[0]

	perAttribute := []mapping.Entry{}
	for attr, col := range map[string]string{
		"thing.product.brand":                  "brand",
		"thing.product.model":                  "model",
		"thing.product.watch.case":             "watch_case",
		"thing.product.price":                  "price",
		"thing.product.watch.water_resistance": "water_m",
	} {
		perAttribute = append(perAttribute, mapping.Entry{
			AttributeID: attr, SourceID: def.ID,
			Rule: mapping.Rule{Language: mapping.LangSQL,
				Code: "SELECT " + col + " FROM watches ORDER BY id"},
		})
	}
	sharedCode := "SELECT brand, model, watch_case, price, water_m FROM watches ORDER BY id"
	shared := []mapping.Entry{}
	for attr, col := range map[string]string{
		"thing.product.brand":                  "brand",
		"thing.product.model":                  "model",
		"thing.product.watch.case":             "watch_case",
		"thing.product.price":                  "price",
		"thing.product.watch.water_resistance": "water_m",
	} {
		shared = append(shared, mapping.Entry{
			AttributeID: attr, SourceID: def.ID,
			Rule: mapping.Rule{Language: mapping.LangSQL, Code: sharedCode, Column: col},
		})
	}

	t := &table{header: []string{"granularity", "rule executions", "query", "matched"}}
	run := func(name string, entries []mapping.Entry, opts extract.Options, execs string) error {
		mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, opts)
		if err != nil {
			return err
		}
		if err := mw.RegisterSource(def); err != nil {
			return err
		}
		for _, e := range entries {
			if err := mw.RegisterMapping(e); err != nil {
				return err
			}
		}
		var matched int
		mean, err := timeIt(3, func() error {
			res, err := mw.Query(context.Background(), "SELECT product")
			if err != nil {
				return err
			}
			if len(res.Errors) > 0 {
				return fmt.Errorf("%v", res.Errors)
			}
			matched = len(res.Matched)
			return nil
		})
		if err != nil {
			return err
		}
		t.add(name, execs, mean.Round(time.Microsecond).String(), fmt.Sprint(matched))
		return nil
	}
	if err := run("per-attribute (paper)", perAttribute, extract.Options{}, "5 per query"); err != nil {
		return err
	}
	if err := run("shared, no cache", shared, extract.Options{}, "5 per query"); err != nil {
		return err
	}
	if err := run("shared + rule cache", shared, extract.Options{CacheTTL: time.Minute}, "1 total"); err != nil {
		return err
	}
	t.print()
	fmt.Println("  attribute-granular mapping (the paper's choice) costs repeated statement")
	fmt.Println("  execution; a shared class rule plus result caching removes the redundancy")
	fmt.Println("  without giving up per-attribute registration")
	return nil
}

// runE10 — middleware behind HTTP with concurrent clients.
func runE10(cfg config) error {
	mw, _, err := buildMiddleware(workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 100, Seed: 7,
	}, extract.Options{})
	if err != nil {
		return err
	}
	srv := httptest.NewServer(transport.NewServer(mw))
	defer srv.Close()

	concurrencies := []int{1, 4, 16, 32}
	if cfg.quick {
		concurrencies = []int{1, 4, 16}
	}
	const queriesPerClient = 10
	t := &table{header: []string{"clients", "queries", "total", "mean-latency", "throughput"}}
	for _, clients := range concurrencies {
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl := transport.NewClient(srv.URL, nil)
				for q := 0; q < queriesPerClient; q++ {
					if _, err := cl.Query(context.Background(), paperQuery, "json"); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		total := time.Since(start)
		close(errCh)
		for err := range errCh {
			return err
		}
		n := clients * queriesPerClient
		t.add(fmt.Sprint(clients), fmt.Sprint(n), total.Round(time.Millisecond).String(),
			(total / time.Duration(n) * time.Duration(clients)).Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f q/s", float64(n)/total.Seconds()))
	}
	t.print()
	return nil
}
