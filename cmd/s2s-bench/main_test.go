package main

import (
	"os"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := &table{header: []string{"name", "value"}}
	tbl.add("short", "1")
	tbl.add("a-much-longer-name", "22222")

	// Capture stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	tbl.print()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 4096)
	n, _ := r.Read(buf)
	out := string(buf[:n])

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	// Header, separator, and rows align on the widest cell.
	if !strings.Contains(lines[1], strings.Repeat("-", len("a-much-longer-name"))) {
		t.Errorf("separator not sized to widest cell: %q", lines[1])
	}
	valueCol := strings.Index(lines[0], "value")
	for i, line := range lines[2:] {
		cell := strings.TrimSpace(line[valueCol:])
		if cell != []string{"1", "22222"}[i] {
			t.Errorf("row %d value column = %q", i, cell)
		}
	}
}

// TestQuickExperimentsSmoke runs the fastest experiments end to end; they
// internally verify results against ground truth and return errors on any
// mismatch.
func TestQuickExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := config{quick: true}
	for _, exp := range []struct {
		name string
		run  func(config) error
	}{
		{"E1", runE1}, {"E6", runE6}, {"E13", runE13},
	} {
		if err := exp.run(cfg); err != nil {
			t.Errorf("%s: %v", exp.name, err)
		}
	}
}
