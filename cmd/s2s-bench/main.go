// Command s2s-bench runs the reproduction experiments E1-E10 catalogued in
// DESIGN.md and prints the tables recorded in EXPERIMENTS.md. The paper has
// no quantitative evaluation (workshop paper); these experiments realize
// every architectural figure and qualitative claim as a measured run.
//
// Usage:
//
//	s2s-bench              # run everything
//	s2s-bench -run E5,E8   # run a subset
//	s2s-bench -quick       # smaller parameter sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// experiment is one runnable experiment.
type experiment struct {
	id    string
	title string
	run   func(cfg config) error
}

// config carries global knobs into experiments.
type config struct {
	quick bool
}

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs to run (default all)")
		quick   = flag.Bool("quick", false, "smaller sweeps for fast runs")
	)
	flag.Parse()

	experiments := []experiment{
		{"E1", "end-to-end architecture (Figure 1)", runE1},
		{"E2", "ontology schema scaling (Figure 2)", runE2},
		{"E3", "attribute registration (Figures 3-4)", runE3},
		{"E4", "extraction process decomposition (Figure 5)", runE4},
		{"E5", "single- vs n-record scaling (§2.3)", runE5},
		{"E6", "query handler (§2.5)", runE6},
		{"E7", "instance serialization (§2.6)", runE7},
		{"E8", "semantic vs syntactic integration (§1, §5)", runE8},
		{"E9", "extractor type cost (§2.4)", runE9},
		{"E10", "middleware as a network endpoint", runE10},
		{"E11", "rule-result caching ablation", runE11},
		{"E12", "semantic processing: reasoning + SPARQL", runE12},
		{"E13", "web wrapper languages: WebL vs CSS selectors", runE13},
		{"E14", "mapping granularity: per-attribute vs shared class rule", runE14},
	}

	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	cfg := config{quick: *quick}
	failed := false
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", e.id, e.title)
		if err := e.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// table prints aligned rows.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) print() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
}
