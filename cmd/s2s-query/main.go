// Command s2s-query runs one S2SQL query, either against a remote S2S
// endpoint (-endpoint) or against a locally generated workload world.
//
// Usage:
//
//	s2s-query -q "SELECT product WHERE brand='Seiko'" [-format owl|turtle|ntriples|xml|json|text] [-trace]
//	s2s-query -endpoint http://localhost:8080 -q "SELECT provider" -format json -trace
//	s2s-query -endpoint http://localhost:8080 -q "SELECT product" -stream
//
// With -trace, the query's span tree (per-stage and per-source timings;
// see docs/OBSERVABILITY.md) is pretty-printed to stderr after the
// result. In endpoint mode the tree comes back from the server, so a
// federated query shows its remote per-source spans under one trace.
//
// With -stream, the answer flows through the streaming pipeline
// (docs/STREAMING.md): in endpoint mode the body arrives via the
// chunked /query/stream route and is written to stdout as it lands; in
// local mode the middleware runs with the Streaming option. Output
// bytes are identical either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/reason"
	"repro/internal/sparql"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	var (
		endpoint = flag.String("endpoint", "", "remote S2S endpoint; empty runs against a local generated world")
		query    = flag.String("q", "SELECT product WHERE brand='Seiko' AND case='stainless-steel'", "S2SQL query")
		sparqlQ  = flag.String("sparql", "", "SPARQL query to run over the S2SQL answer graph")
		doReason = flag.Bool("reason", false, "materialize RDFS entailments before the SPARQL query")
		format   = flag.String("format", "text", "output format: owl, turtle, ntriples, xml, json, text")
		records  = flag.Int("records", 50, "records per source for the local world")
		seed     = flag.Int64("seed", 1, "seed for the local world")
		timeout  = flag.Duration("timeout", 30*time.Second, "query timeout")
		budget   = flag.Duration("budget", 0, "per-query extraction deadline budget for the local world (0 disables)")
		trace    = flag.Bool("trace", false, "print the query's span tree to stderr")
		stream   = flag.Bool("stream", false, "stream the answer (chunked /query/stream in endpoint mode, streaming pipeline locally)")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *endpoint, *query, *sparqlQ, *format, *records, *seed, *budget, *doReason, *trace, *stream); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-query:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, endpoint, query, sparqlQuery, format string, records int, seed int64, budget time.Duration, doReason, trace, stream bool) error {
	if endpoint != "" {
		client := transport.NewClient(endpoint, nil)
		if stream && sparqlQuery == "" {
			res, err := client.QueryStream(ctx, query, format, os.Stdout)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "# matched=%d related=%d errors=%d bytes=%d (streamed)\n",
				res.Matched, res.Related, res.SourceErrors, res.Bytes)
			return nil
		}
		if sparqlQuery != "" {
			resp, err := client.SPARQL(ctx, transport.SPARQLRequest{
				S2SQL: query, SPARQL: sparqlQuery, Reason: doReason,
			})
			if err != nil {
				return err
			}
			printBindings(resp.Vars, resp.Bindings)
			return nil
		}
		var resp *transport.QueryResponse
		var err error
		if trace {
			resp, err = client.QueryTraced(ctx, query, format)
		} else {
			resp, err = client.Query(ctx, query, format)
		}
		if err != nil {
			return err
		}
		fmt.Printf("# matched=%d related=%d errors=%d degraded=%d format=%s\n",
			resp.Matched, resp.Related, len(resp.Errors), len(resp.Degraded), resp.Format)
		for _, e := range resp.Errors {
			fmt.Printf("# error: %s\n", e)
		}
		for _, d := range resp.Degraded {
			fmt.Printf("# degraded: %s\n", d)
		}
		fmt.Print(resp.Body)
		if trace && resp.Trace != nil {
			fmt.Fprintln(os.Stderr, "# trace:")
			obs.WriteTree(os.Stderr, resp.Trace)
		}
		return nil
	}

	f, err := instance.ParseFormat(format)
	if err != nil {
		return err
	}
	world, err := workload.Generate(workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: records, Seed: seed,
	})
	if err != nil {
		return err
	}
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog,
		extract.Options{QueryBudget: budget, Streaming: stream})
	if err != nil {
		return err
	}
	if err := world.Apply(mw); err != nil {
		return err
	}
	if sparqlQuery != "" {
		res, err := mw.Query(ctx, query)
		if err != nil {
			return err
		}
		graph, err := mw.Generator().ToGraph(res)
		if err != nil {
			return err
		}
		if doReason {
			graph, err = reason.Materialize(mw.Ontology().ToGraph(), graph)
			if err != nil {
				return err
			}
		}
		out, err := sparql.Select(graph, sparqlQuery)
		if err != nil {
			return err
		}
		rows := make([]map[string]string, 0, len(out.Bindings))
		for _, b := range out.Bindings {
			row := map[string]string{}
			for v, term := range b {
				row[v] = term.String()
			}
			rows = append(rows, row)
		}
		printBindings(out.Vars, rows)
		printLastTrace(mw, trace)
		return nil
	}

	res, err := mw.QueryTo(ctx, os.Stdout, query, f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# matched=%d related=%d errors=%d\n",
		len(res.Matched), len(res.Related), len(res.Errors))
	printLastTrace(mw, trace)
	return nil
}

// printLastTrace prints the most recent completed query trace to stderr.
func printLastTrace(mw *core.Middleware, trace bool) {
	if !trace {
		return
	}
	for _, tr := range mw.Tracer().Last(1) {
		fmt.Fprintln(os.Stderr, "# trace:")
		obs.WriteTree(os.Stderr, tr)
	}
}

func printBindings(vars []string, rows []map[string]string) {
	fmt.Printf("# %d solution(s); vars: %s\n", len(rows), strings.Join(vars, ", "))
	for _, row := range rows {
		parts := make([]string, 0, len(vars))
		for _, v := range vars {
			parts = append(parts, fmt.Sprintf("%s=%s", v, row[v]))
		}
		fmt.Println(strings.Join(parts, "  "))
	}
}
