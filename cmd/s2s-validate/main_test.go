package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// fixture persists a generated middleware configuration to a temp file.
// With gap set, every mapping for one attribute is dropped, so the
// config is structurally valid but has an unmapped attribute.
func fixture(t *testing.T, gap bool) string {
	t.Helper()
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, RecordsPerSource: 4, Seed: 51,
	})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	// The generated workload leaves a few attributes unmapped; fill them
	// in so the baseline fixture has full coverage.
	for _, a := range mw.Ontology().Attributes() {
		if len(mw.Mappings().Entries(a.ID())) == 0 {
			err := mw.RegisterMapping(mapping.Entry{
				AttributeID: a.ID(), SourceID: "db_000",
				Rule: mapping.Rule{Language: mapping.LangSQL, Code: "SELECT model FROM watches ORDER BY id"},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg, err := config.FromMiddleware(mw)
	if err != nil {
		t.Fatal(err)
	}
	if gap {
		victim := cfg.Mappings[0].Attribute
		kept := cfg.Mappings[:0:0]
		for _, m := range cfg.Mappings {
			if m.Attribute != victim {
				kept = append(kept, m)
			}
		}
		if len(kept) == len(cfg.Mappings) {
			t.Fatalf("no mapping dropped for %s", victim)
		}
		cfg.Mappings = kept
	}
	path := filepath.Join(t.TempDir(), "s2s.json")
	if err := config.SaveFile(path, cfg); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDefaultModeWarnsOnGaps(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, fixture(t, true), false); err != nil {
		t.Fatalf("default mode turned a coverage gap into an error: %v", err)
	}
	if !strings.Contains(out.String(), "unmapped:") {
		t.Errorf("gap not reported in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "configuration is valid") {
		t.Errorf("valid config not confirmed:\n%s", out.String())
	}
}

func TestRunStrictModeFailsOnGaps(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, fixture(t, true), true)
	if err == nil {
		t.Fatal("strict mode accepted a config with an unmapped attribute")
	}
	if !strings.Contains(err.Error(), "unmapped attribute") {
		t.Errorf("error does not name the gap: %v", err)
	}
	if strings.Contains(out.String(), "configuration is valid") {
		t.Errorf("strict failure still printed the valid verdict:\n%s", out.String())
	}
}

func TestRunStrictModeAcceptsFullCoverage(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, fixture(t, false), true); err != nil {
		t.Fatalf("strict mode rejected a fully covered config: %v", err)
	}
	if !strings.Contains(out.String(), "configuration is valid") {
		t.Errorf("valid config not confirmed:\n%s", out.String())
	}
}
