// Command s2s-validate lints a persisted S2S middleware configuration: it
// rebuilds the middleware from the file (which re-validates the ontology,
// every source definition, and every extraction rule) and then reports
// mapping coverage — which ontology attributes can actually be answered,
// class by class. The paper's manual mapping procedure (§2.3) makes this
// the operator's pre-flight check.
//
// Usage:
//
//	s2s-validate -config s2s.json [-strict]
//
// Exit status 1 on validation errors; 0 otherwise. By default coverage
// gaps are warnings (unmapped attributes simply never produce values);
// with -strict they are errors, for deployments that promise full
// ontology coverage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/ontology"
)

func main() {
	cfgPath := flag.String("config", "s2s.json", "middleware configuration file")
	nextPath := flag.String("next", "", "proposed new configuration; prints the ontology diff and mapping impact")
	strict := flag.Bool("strict", false, "treat coverage gaps (unmapped attributes, unused sources) as errors")
	flag.Parse()

	if err := run(os.Stdout, *cfgPath, *strict); err != nil {
		fmt.Fprintln(os.Stderr, "s2s-validate:", err)
		os.Exit(1)
	}
	if *nextPath != "" {
		if err := runDiff(*cfgPath, *nextPath); err != nil {
			fmt.Fprintln(os.Stderr, "s2s-validate:", err)
			os.Exit(1)
		}
	}
}

// runDiff reports what a proposed ontology evolution does to the current
// mappings (paper §2.3: mapping maintenance is manual; this is the
// operator's change-impact preview).
func runDiff(currentPath, nextPath string) error {
	currentCfg, err := config.LoadFile(currentPath)
	if err != nil {
		return err
	}
	current, err := currentCfg.BuildMiddleware(core.Config{})
	if err != nil {
		return err
	}
	nextCfg, err := config.LoadFile(nextPath)
	if err != nil {
		return err
	}
	nextOnt, err := ontology.ReadOWL(strings.NewReader(nextCfg.OntologyOWL))
	if err != nil {
		return fmt.Errorf("parsing next ontology: %w", err)
	}

	fmt.Printf("\n=== evolution: %s -> %s ===\n", currentPath, nextPath)
	diff := ontology.Compare(current.Ontology(), nextOnt)
	fmt.Println(diff)

	impact := current.Mappings().ImpactOf(nextOnt)
	fmt.Printf("\nmapping impact: %d unaffected, %d broken, %d retyped\n",
		impact.Unaffected, len(impact.Broken), len(impact.Retyped))
	for _, e := range impact.Broken {
		fmt.Printf("  BROKEN  %s (source %s)\n", e.AttributeID, e.SourceID)
	}
	for _, e := range impact.Retyped {
		fmt.Printf("  RETYPED %s (source %s): re-check value conversion\n", e.AttributeID, e.SourceID)
	}
	return nil
}

func run(w io.Writer, path string, strict bool) error {
	cfg, err := config.LoadFile(path)
	if err != nil {
		return err
	}
	// Building validates everything: ontology structure, source connection
	// info, rule language compatibility, and rule syntax.
	mw, err := cfg.BuildMiddleware(core.Config{})
	if err != nil {
		return fmt.Errorf("configuration invalid: %w", err)
	}

	ont := mw.Ontology()
	repo := mw.Mappings()
	fmt.Fprintf(w, "ontology %q: %d classes, %d attributes\n", ont.Name, len(ont.Classes()), len(ont.Attributes()))
	fmt.Fprintf(w, "sources: %d, mappings: %d\n\n", mw.Sources().Len(), len(repo.AllEntries()))

	// Per-class coverage.
	unmapped := 0
	fmt.Fprintln(w, "attribute coverage by class:")
	for _, class := range ont.Classes() {
		attrs := class.Attributes
		if len(attrs) == 0 {
			continue
		}
		var covered, uncovered []string
		for _, a := range attrs {
			if len(repo.Entries(a.ID())) > 0 {
				covered = append(covered, a.Name)
			} else {
				uncovered = append(uncovered, a.Name)
			}
		}
		unmapped += len(uncovered)
		fmt.Fprintf(w, "  %-30s %d/%d mapped", class.Path(), len(covered), len(attrs))
		if len(uncovered) > 0 {
			fmt.Fprintf(w, "   (unmapped: %s)", strings.Join(uncovered, ", "))
		}
		fmt.Fprintln(w)
	}

	// Per-source statistics.
	bySource := map[string][]mapping.Entry{}
	for _, e := range repo.AllEntries() {
		bySource[e.SourceID] = append(bySource[e.SourceID], e)
	}
	var sourceIDs []string
	for id := range bySource {
		sourceIDs = append(sourceIDs, id)
	}
	sort.Strings(sourceIDs)
	fmt.Fprintln(w, "\nmappings by source:")
	for _, id := range sourceIDs {
		entries := bySource[id]
		langs := map[string]int{}
		for _, e := range entries {
			langs[e.Rule.Language.String()]++
		}
		var langParts []string
		for lang, n := range langs {
			langParts = append(langParts, fmt.Sprintf("%s×%d", lang, n))
		}
		sort.Strings(langParts)
		def, err := mw.Sources().Lookup(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-12s %-9s %2d rules (%s)\n", id, def.Kind, len(entries), strings.Join(langParts, ", "))
	}

	// Sources registered but never used by a mapping.
	var unused []string
	for _, def := range mw.Sources().All() {
		if len(bySource[def.ID]) == 0 {
			unused = append(unused, def.ID)
		}
	}
	if len(unused) > 0 {
		fmt.Fprintf(w, "\nwarning: sources with no mappings: %s\n", strings.Join(unused, ", "))
	}

	// Class keys.
	if keys := repo.ClassKeys(); len(keys) > 0 {
		fmt.Fprintln(w, "\nclass keys (cross-source identity):")
		var classes []string
		for c := range keys {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Fprintf(w, "  %s -> %s\n", c, keys[c])
		}
	}

	// In strict mode a deployment promises full coverage: every attribute
	// answerable, every registered source earning its keep.
	if strict && (unmapped > 0 || len(unused) > 0) {
		return fmt.Errorf("strict: %d unmapped attribute(s), %d source(s) with no mappings", unmapped, len(unused))
	}

	fmt.Fprintln(w, "\nconfiguration is valid")
	return nil
}
